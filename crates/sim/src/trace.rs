//! Structured trace events — the observable form of a simulation run.
//!
//! Every run of [`crate::Network`] produces a totally ordered stream of
//! [`TraceEvent`]s: round boundaries, transmissions, deliveries, channel
//! interference, decisions, and protocol-level notes (see
//! [`crate::Ctx::note`]). The stream is a pure function of the network's
//! inputs, so two runs of the same experiment — at any worker-thread
//! count — serialize to byte-identical JSONL.
//!
//! The legacy delivery-trace hash is *derived from this stream by
//! construction*: the network folds exactly the words returned by
//! [`TraceEvent::fold_into`] into its FNV-1a accumulator, and
//! [`replay_hash`] re-derives the same hash from a serialized stream, so
//! the two representations can never diverge.

use crate::Round;
use std::io::Write;

/// FNV-1a offset basis — the trace hash's initial value.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds words into an FNV-1a accumulator, byte by byte, little-endian.
pub fn fold_words(hash: &mut u64, words: &[u64]) {
    for w in words {
        for byte in w.to_le_bytes() {
            *hash ^= u64::from(byte);
            *hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
}

/// One-shot FNV-1a digest of a word sequence — the same fold the trace
/// hash uses, for compact fingerprints carried in [`TraceEvent::Note`]
/// payloads (e.g. a digest of the evidence a commit rested on).
#[must_use]
pub fn digest_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut hash = FNV_OFFSET;
    for w in words {
        fold_words(&mut hash, &[w]);
    }
    hash
}

/// One typed event in a run's trace stream.
///
/// Node and transmission identities are plain indices (not
/// [`rbcast_grid::NodeId`]) so the event is a self-contained record
/// independent of any live network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A delivery round began with `on_air` transmissions pending.
    RoundStart {
        /// Round number (1-based, matching [`crate::RoundReport`]).
        round: Round,
        /// Transmissions on the air this round.
        on_air: u64,
    },
    /// One transmission on the air, in global delivery order.
    Transmission {
        /// Round in which it is delivered.
        round: Round,
        /// Position in this round's global transmission order.
        index: u64,
        /// True transmitter's node index.
        sender: u64,
        /// Identity the channel reports (differs from `sender` only
        /// under the §X spoofing relaxation).
        claimed: u64,
    },
    /// A delivery destroyed by a deliberate collision (§X jamming).
    Jammed {
        /// Delivery round.
        round: Round,
        /// Transmission index within the round.
        index: u64,
        /// Receiver that lost the delivery.
        receiver: u64,
        /// The jammer responsible.
        jammer: u64,
    },
    /// A delivery destroyed by probabilistic channel loss.
    Lost {
        /// Delivery round.
        round: Round,
        /// Transmission index within the round.
        index: u64,
        /// Receiver that lost the delivery.
        receiver: u64,
    },
    /// A successful delivery — one of the two event kinds the trace
    /// hash folds.
    Delivery {
        /// Delivery round.
        round: Round,
        /// Transmission index within the round.
        index: u64,
        /// Receiving node.
        receiver: u64,
        /// Claimed sender identity, as the receiver observed it.
        claimed: u64,
    },
    /// A protocol-level annotation recorded via [`crate::Ctx::note`] —
    /// e.g. the indirect protocol accepting commit evidence.
    Note {
        /// Round in which the note was recorded.
        round: Round,
        /// The annotating node.
        node: u64,
        /// Static label naming the occurrence (e.g. `"commit-evidence"`).
        label: &'static str,
        /// Free payload word.
        value: u64,
    },
    /// A node committed (first observed at this round's end; nodes are
    /// scanned in index order, so the stream order is deterministic).
    Decision {
        /// Round the decision was recorded.
        round: Round,
        /// The deciding node.
        node: u64,
        /// The committed value.
        value: bool,
    },
    /// A delivery round ended — the other hashed event kind.
    RoundEnd {
        /// Round number.
        round: Round,
        /// Total nodes decided after this round.
        decided: u64,
        /// True when the hash froze at (or before) this round's end:
        /// no later event contributes to the hash.
        frozen: bool,
    },
}

impl TraceEvent {
    /// Folds this event's hash contribution into `hash`. Only
    /// [`TraceEvent::Delivery`] and [`TraceEvent::RoundEnd`] contribute;
    /// the words match the network's historical fold exactly.
    pub fn fold_into(&self, hash: &mut u64) {
        match *self {
            TraceEvent::Delivery {
                round,
                index,
                receiver,
                claimed,
            } => fold_words(hash, &[u64::from(round), index, receiver, claimed]),
            TraceEvent::RoundEnd { round, decided, .. } => {
                fold_words(hash, &[u64::from(round), decided]);
            }
            _ => {}
        }
    }

    /// Serializes the event as one line of JSON (no trailing newline).
    /// Keys are emitted in a fixed order, so equal events serialize to
    /// equal bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        match *self {
            TraceEvent::RoundStart { round, on_air } => {
                format!("{{\"ev\":\"round_start\",\"round\":{round},\"on_air\":{on_air}}}")
            }
            TraceEvent::Transmission {
                round,
                index,
                sender,
                claimed,
            } => format!(
                "{{\"ev\":\"tx\",\"round\":{round},\"index\":{index},\
                 \"sender\":{sender},\"claimed\":{claimed}}}"
            ),
            TraceEvent::Jammed {
                round,
                index,
                receiver,
                jammer,
            } => format!(
                "{{\"ev\":\"jam\",\"round\":{round},\"index\":{index},\
                 \"receiver\":{receiver},\"jammer\":{jammer}}}"
            ),
            TraceEvent::Lost {
                round,
                index,
                receiver,
            } => format!(
                "{{\"ev\":\"loss\",\"round\":{round},\"index\":{index},\"receiver\":{receiver}}}"
            ),
            TraceEvent::Delivery {
                round,
                index,
                receiver,
                claimed,
            } => format!(
                "{{\"ev\":\"delivery\",\"round\":{round},\"index\":{index},\
                 \"receiver\":{receiver},\"claimed\":{claimed}}}"
            ),
            TraceEvent::Note {
                round,
                node,
                label,
                value,
            } => format!(
                "{{\"ev\":\"note\",\"round\":{round},\"node\":{node},\
                 \"label\":\"{label}\",\"value\":{value}}}"
            ),
            TraceEvent::Decision { round, node, value } => {
                format!(
                    "{{\"ev\":\"decision\",\"round\":{round},\"node\":{node},\"value\":{value}}}"
                )
            }
            TraceEvent::RoundEnd {
                round,
                decided,
                frozen,
            } => format!(
                "{{\"ev\":\"round_end\",\"round\":{round},\"decided\":{decided},\
                 \"frozen\":{frozen}}}"
            ),
        }
    }
}

/// A consumer of trace events. The network calls [`TraceSink::record`]
/// for every event, in stream order, and [`TraceSink::flush`] once at
/// the end of each run.
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, event: &TraceEvent);
    /// Flushes any buffering; called at the end of a run.
    fn flush(&mut self) {}
}

/// A [`TraceSink`] serializing every event as one JSON line.
///
/// Write errors are sticky: the first failure is remembered and
/// subsequent events are dropped (a trace is diagnostics, not simulation
/// state — it must never abort a run).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    failed: bool,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            failed: false,
        }
    }

    /// True once any write has failed.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.failed
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.failed {
            return;
        }
        if writeln!(self.writer, "{}", event.to_json()).is_err() {
            self.failed = true;
        }
    }

    fn flush(&mut self) {
        if self.writer.flush().is_err() {
            self.failed = true;
        }
    }
}

/// A [`TraceSink`] collecting events in memory (for tests and
/// programmatic inspection).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// The recorded stream, in order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// Re-derives the delivery-trace hash from an event stream.
///
/// Folding stops after the first [`TraceEvent::RoundEnd`] carrying
/// `frozen: true` — exactly where the live network froze its hash.
#[must_use]
pub fn replay_hash_events(events: &[TraceEvent]) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut frozen = false;
    for ev in events {
        if frozen {
            break;
        }
        ev.fold_into(&mut hash);
        if let TraceEvent::RoundEnd { frozen: f, .. } = ev {
            frozen = *f;
        }
    }
    hash
}

/// Re-derives the delivery-trace hash from serialized JSONL (the output
/// of a [`JsonlSink`]). Returns an error describing the first malformed
/// line, if any.
pub fn replay_hash(jsonl: &str) -> Result<u64, String> {
    // Error text lives in a helper so the per-line happy path never
    // allocates; it only runs on malformed input.
    fn line_err(lineno: usize, what: &str) -> String {
        format!("line {}: {what}", lineno + 1)
    }
    let mut hash = FNV_OFFSET;
    for (lineno, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev =
            json_field_str(line, "ev").ok_or_else(|| line_err(lineno, "missing \"ev\" field"))?;
        match ev {
            "delivery" => {
                let words = [
                    json_field_u64(line, "round"),
                    json_field_u64(line, "index"),
                    json_field_u64(line, "receiver"),
                    json_field_u64(line, "claimed"),
                ];
                let words: Vec<u64> = words
                    .into_iter()
                    .collect::<Option<Vec<u64>>>()
                    .ok_or_else(|| line_err(lineno, "malformed delivery"))?;
                fold_words(&mut hash, &words);
            }
            "round_end" => {
                let round = json_field_u64(line, "round")
                    .ok_or_else(|| line_err(lineno, "malformed round_end"))?;
                let decided = json_field_u64(line, "decided")
                    .ok_or_else(|| line_err(lineno, "malformed round_end"))?;
                fold_words(&mut hash, &[round, decided]);
                match json_field_str(line, "frozen") {
                    Some("true") => return Ok(hash),
                    Some("false") => {}
                    _ => return Err(line_err(lineno, "malformed round_end")),
                }
            }
            _ => {}
        }
    }
    Ok(hash)
}

/// Extracts the raw token following `"key":` on a single well-formed
/// JSON line produced by [`TraceEvent::to_json`] — a quoted string's
/// contents or a bare literal (number / bool). Keys never repeat on one
/// line, so the first occurrence is the value.
fn json_field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    if let Some(quoted) = rest.strip_prefix('"') {
        let end = quoted.find('"')?;
        Some(&quoted[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn json_field_u64(line: &str, key: &str) -> Option<u64> {
    json_field_str(line, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_matches_manual_fnv() {
        let mut hash = FNV_OFFSET;
        fold_words(&mut hash, &[1, 2, 3]);
        let mut manual = FNV_OFFSET;
        for w in [1u64, 2, 3] {
            for b in w.to_le_bytes() {
                manual ^= u64::from(b);
                manual = manual.wrapping_mul(FNV_PRIME);
            }
        }
        assert_eq!(hash, manual);
    }

    #[test]
    fn only_deliveries_and_round_ends_fold() {
        let silent = [
            TraceEvent::RoundStart {
                round: 1,
                on_air: 3,
            },
            TraceEvent::Transmission {
                round: 1,
                index: 0,
                sender: 4,
                claimed: 4,
            },
            TraceEvent::Jammed {
                round: 1,
                index: 0,
                receiver: 5,
                jammer: 6,
            },
            TraceEvent::Lost {
                round: 1,
                index: 0,
                receiver: 5,
            },
            TraceEvent::Note {
                round: 1,
                node: 5,
                label: "x",
                value: 9,
            },
            TraceEvent::Decision {
                round: 1,
                node: 5,
                value: true,
            },
        ];
        for ev in &silent {
            let mut hash = FNV_OFFSET;
            ev.fold_into(&mut hash);
            assert_eq!(hash, FNV_OFFSET, "{ev:?} must not fold");
        }
        let mut hash = FNV_OFFSET;
        TraceEvent::Delivery {
            round: 1,
            index: 0,
            receiver: 5,
            claimed: 4,
        }
        .fold_into(&mut hash);
        assert_ne!(hash, FNV_OFFSET);
    }

    #[test]
    fn jsonl_roundtrip_rederives_the_hash() {
        let events = vec![
            TraceEvent::RoundStart {
                round: 1,
                on_air: 1,
            },
            TraceEvent::Transmission {
                round: 1,
                index: 0,
                sender: 7,
                claimed: 7,
            },
            TraceEvent::Delivery {
                round: 1,
                index: 0,
                receiver: 8,
                claimed: 7,
            },
            TraceEvent::Decision {
                round: 1,
                node: 8,
                value: true,
            },
            TraceEvent::RoundEnd {
                round: 1,
                decided: 1,
                frozen: false,
            },
            TraceEvent::Delivery {
                round: 2,
                index: 0,
                receiver: 9,
                claimed: 8,
            },
            TraceEvent::RoundEnd {
                round: 2,
                decided: 2,
                frozen: true,
            },
        ];
        let mut sink = JsonlSink::new(Vec::new());
        for ev in &events {
            sink.record(ev);
        }
        TraceSink::flush(&mut sink);
        assert!(!sink.failed());
        let jsonl = String::from_utf8(sink.writer).expect("trace is utf-8");
        assert_eq!(
            replay_hash(&jsonl).expect("well-formed"),
            replay_hash_events(&events)
        );
    }

    #[test]
    fn replay_stops_folding_at_the_freeze() {
        let prefix = vec![
            TraceEvent::Delivery {
                round: 1,
                index: 0,
                receiver: 2,
                claimed: 1,
            },
            TraceEvent::RoundEnd {
                round: 1,
                decided: 1,
                frozen: true,
            },
        ];
        let mut with_tail = prefix.clone();
        with_tail.push(TraceEvent::Delivery {
            round: 2,
            index: 0,
            receiver: 3,
            claimed: 2,
        });
        with_tail.push(TraceEvent::RoundEnd {
            round: 2,
            decided: 1,
            frozen: true,
        });
        assert_eq!(replay_hash_events(&prefix), replay_hash_events(&with_tail));
        let to_jsonl =
            |evs: &[TraceEvent]| evs.iter().map(|e| e.to_json() + "\n").collect::<String>();
        assert_eq!(
            replay_hash(&to_jsonl(&prefix)).expect("well-formed"),
            replay_hash(&to_jsonl(&with_tail)).expect("well-formed"),
        );
    }

    #[test]
    fn replay_rejects_malformed_lines() {
        assert!(replay_hash("{\"no_ev\":1}").is_err());
        assert!(replay_hash("{\"ev\":\"delivery\",\"round\":1}").is_err());
        assert!(replay_hash("{\"ev\":\"round_end\",\"round\":1,\"decided\":0}").is_err());
    }

    #[test]
    fn json_is_stable_and_single_line() {
        let ev = TraceEvent::Delivery {
            round: 3,
            index: 5,
            receiver: 12,
            claimed: 7,
        };
        let json = ev.to_json();
        assert_eq!(
            json,
            "{\"ev\":\"delivery\",\"round\":3,\"index\":5,\"receiver\":12,\"claimed\":7}"
        );
        assert!(!json.contains('\n'));
    }
}
