// Fixture: an ad-hoc neighborhood scan in library code. The whole-torus
// degree sum re-derives metric offsets per node instead of reading the
// shared CSR NeighborTable.

pub fn degree_sum(torus: &Torus, r: u32, metric: Metric) -> usize {
    let mut total = 0;
    for id in torus.node_ids() {
        total += torus.neighborhood(id, r, metric).count();
    }
    total
}
