//! Fixture: ad-hoc atomic memory-ordering choice outside the obs and
//! engine modules. `cargo xtask audit --root
//! crates/xtask/fixtures/atomic-ordering` must exit non-zero with
//! `atomic-ordering` findings.

use std::sync::atomic::{AtomicU64, Ordering};

pub static DROPPED: AtomicU64 = AtomicU64::new(0);

pub fn record_drop() {
    DROPPED.fetch_add(1, Ordering::Relaxed);
}

pub fn record_ok(count: &AtomicU64) {
    // audit:allow(atomic-ordering): monotone counter, read after writers join
    count.fetch_add(1, Ordering::Relaxed);
}
