//! Fixture: ad-hoc panic swallowing outside the supervisor module.
//! `cargo xtask audit --root crates/xtask/fixtures/catch-unwind`
//! must exit non-zero with `catch-unwind` findings.

/// Catches a worker's panic in place instead of routing the task
/// through `rbcast_core::supervisor` — the failure never reaches the
/// quarantine report or the checkpoint journal, which is exactly what
/// the rule forbids.
pub fn run_quietly(f: impl FnOnce() -> u64 + std::panic::UnwindSafe) -> Option<u64> {
    std::panic::catch_unwind(f).ok()
}
