//! Fixture: unchecked multiplication on fault-bound quantities inside a
//! threshold module. `cargo xtask audit --root
//! crates/xtask/fixtures/checked-threshold-arith` must exit non-zero
//! with `checked-threshold-arith` findings.

pub fn naive_bound(r: u32) -> u32 {
    2 * r * r / 3
}

pub fn widened_bound(r: u32) -> u64 {
    let r = u64::from(r);
    2 * r * r / 3
}

pub fn checked_bound(r: u32) -> Option<u32> {
    r.checked_mul(r)?.checked_mul(2).map(|x| x / 3)
}
