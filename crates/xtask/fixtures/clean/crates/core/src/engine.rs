//! Fixture: the engine module is the sanctioned home for raw threads —
//! `raw-thread-spawn` must stay silent on this path.

/// Scoped workers with index-ordered collection, as the real engine does.
pub fn run<T: Sync, R: Send>(tasks: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let mut out = Vec::new();
    std::thread::scope(|s| {
        let handle = s.spawn(|| tasks.iter().map(&f).collect::<Vec<R>>());
        if let Ok(v) = handle.join() {
            out = v;
        }
    });
    out
}
