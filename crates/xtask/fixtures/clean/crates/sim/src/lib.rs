//! Fixture: a file every rule should accept — lint headers present,
//! ordered collections in live code, `expect` with an invariant message,
//! annotated measurement site, and unordered collections confined to
//! `#[cfg(test)]`. `cargo xtask audit --root crates/xtask/fixtures/clean`
//! must exit zero.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

/// Deterministic tally over a sorted map.
pub fn tally(events: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    for &(node, _) in events {
        *counts.entry(node).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// `expect` with an invariant-naming message is the sanctioned escape.
pub fn head(values: &[u32]) -> u32 {
    *values
        .first()
        .expect("tally is never called with an empty event batch")
}

/// Annotated measurement-only wall-clock read.
pub fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let t0 = std::time::Instant::now(); // audit:allow(wall-clock, obs-wallclock)
    f();
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hashmaps_are_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        assert_eq!(tally(&[(1, 2)]), vec![(1, 1)]);
    }
}
