//! Fixture: raw process-environment read outside the config layer.
//! `cargo xtask audit --root crates/xtask/fixtures/env-read` must exit
//! non-zero with `env-read` findings.

pub fn threads() -> usize {
    std::env::var("RBCAST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn chaos_seed() -> Option<std::ffi::OsString> {
    std::env::var_os("RBCAST_CHAOS")
}
