//! Fixture: exact float comparison in geometry code.
//! `cargo xtask audit --root crates/xtask/fixtures/float-eq`
//! must exit non-zero with `float-eq` findings.

pub fn on_unit_circle(x: f64, y: f64) -> bool {
    x * x + y * y == 1.0
}

pub fn distinct_radius(r: f64, other: f64) -> bool {
    r != other
}
