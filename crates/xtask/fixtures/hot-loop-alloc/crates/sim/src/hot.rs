//! Fixture: per-iteration allocation inside hot loops.
//! `cargo xtask audit --root crates/xtask/fixtures/hot-loop-alloc`
//! must exit non-zero with `hot-loop-alloc` findings.

pub fn relay(rounds: &[Vec<u64>]) -> u64 {
    let mut acc = 0u64;
    for round in rounds {
        let copy = round.clone();
        let label = format!("r{acc}");
        acc += copy.len() as u64 + label.len() as u64;
    }
    acc
}

pub fn nested(rounds: &[Vec<u64>]) -> usize {
    let mut total = 0;
    while total < rounds.len() {
        let scratch = vec![0u8; 16];
        total += scratch.len();
    }
    total
}

pub fn hoisted(rounds: &[Vec<u64>]) -> u64 {
    // Allocation outside the loop and reuse inside: the sanctioned shape.
    let mut scratch: Vec<u64> = Vec::new();
    let mut acc = 0;
    for round in rounds {
        scratch.extend_from_slice(round);
        acc += scratch.len() as u64;
        scratch.clear();
    }
    acc
}
