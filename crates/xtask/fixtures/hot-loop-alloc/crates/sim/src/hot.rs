//! Fixture: per-iteration allocation inside hot loops.
//! `cargo xtask audit --root crates/xtask/fixtures/hot-loop-alloc`
//! must exit non-zero with `hot-loop-alloc` findings.

pub fn relay(rounds: &[Vec<u64>]) -> u64 {
    let mut acc = 0u64;
    for round in rounds {
        let copy = round.clone();
        let label = format!("r{acc}");
        acc += copy.len() as u64 + label.len() as u64;
    }
    acc
}

pub fn nested(rounds: &[Vec<u64>]) -> usize {
    let mut total = 0;
    while total < rounds.len() {
        let scratch = vec![0u8; 16];
        total += scratch.len();
    }
    total
}

pub fn hoisted(rounds: &[Vec<u64>]) -> u64 {
    // Allocation outside the loop and reuse inside: the sanctioned shape.
    let mut scratch: Vec<u64> = Vec::new();
    let mut acc = 0;
    for round in rounds {
        scratch.extend_from_slice(round);
        acc += scratch.len() as u64;
        scratch.clear();
    }
    acc
}

// The jammer-table shape: a fresh Option table sized to the round's
// on-air traffic, allocated every round. (The real fix owns one table
// and clear()+resize()s it — see `jam_table_hoisted` below.)
pub fn jam_table_per_round(rounds: &[Vec<u64>]) -> usize {
    let mut assigned = 0;
    for round in rounds {
        let jam_of: Vec<Option<u64>> = vec![None; round.len()];
        assigned += jam_of.iter().flatten().count();
    }
    assigned
}

pub fn jam_table_hoisted(rounds: &[Vec<u64>]) -> usize {
    // The sanctioned shape: one reusable table, cleared and resized.
    let mut jam_of: Vec<Option<u64>> = Vec::new();
    let mut assigned = 0;
    for round in rounds {
        jam_of.clear();
        jam_of.resize(round.len(), None);
        assigned += jam_of.iter().flatten().count();
    }
    assigned
}

// A protocol-style delivery handler: no visible loop, but the engine
// calls it once per delivery, so straight-line allocation here is a
// per-iteration allocation in disguise and must fire.
pub struct Proto {
    seen: Vec<String>,
}

impl Proto {
    pub fn on_message(&mut self, from: u32) {
        let key = from.to_string();
        self.seen.push(key);
    }

    pub fn on_round_end(&mut self) -> usize {
        // Same allocation outside on_message: cold, does not fire.
        let snapshot = self.seen.clone();
        snapshot.len()
    }
}
