//! Fixture: crate root missing the mandatory lint headers
//! (`#![forbid(unsafe_code)]`, `#![warn(missing_docs)]`).
//! `cargo xtask audit --root crates/xtask/fixtures/lint-header`
//! must exit non-zero with `lint-header` findings.

pub fn noop() {}
