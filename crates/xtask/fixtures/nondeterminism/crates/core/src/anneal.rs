//! Fixture: an annealing proposal chain drawing randomness from OS
//! entropy instead of the seeded `mix(seed, step, salt)` counter the
//! real attack search uses. Every draw below must surface as a
//! `nondeterminism` finding — proposal, acceptance, and schedule alike
//! — and nothing else.

pub fn propose_and_accept(current: u64, steps: u32) -> u64 {
    let mut best = current;
    for step in 0..steps {
        // Proposal draw: swap target from the thread-local RNG.
        let swap = rand::random::<u64>();
        // Acceptance draw: Metropolis coin from fresh OS entropy —
        // resume could never replay this chain.
        let mut rng = rand::rngs::StdRng::from_entropy();
        if rng.next_u64() & 1 == 0 {
            best = best ^ swap ^ u64::from(step);
        }
    }
    best
}

pub fn cooling_deadline_nanos() -> u64 {
    // Wall-clock cooling schedule: irreproducible across runs. The
    // annotation keeps this fixture firing only its own rule.
    let started = std::time::SystemTime::now(); // audit:allow(obs-wallclock)
    match started.duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => u64::from(d.subsec_nanos()),
        Err(_) => 0,
    }
}
