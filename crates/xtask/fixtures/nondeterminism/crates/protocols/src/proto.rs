//! Fixture: entropy / wall-clock nondeterminism outside seeded entry
//! points. `cargo xtask audit --root crates/xtask/fixtures/nondeterminism`
//! must exit non-zero with `nondeterminism` findings.

use std::time::Instant;

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn stamp() -> Instant {
    // The annotation keeps this fixture firing only its own rule.
    Instant::now() // audit:allow(obs-wallclock)
}
