//! Fixture: ad-hoc wall-clock reads outside `rbcast-core::obs`.
//! `cargo xtask audit --root crates/xtask/fixtures/obs-wallclock` must
//! exit non-zero with `obs-wallclock` findings (and only those — the
//! `wall-clock` annotations below keep `nondeterminism` quiet, and
//! `SystemTime` appears without `::now` so only the token rule sees it).

pub fn elapsed_ms<F: FnOnce()>(f: F) -> f64 {
    let t0 = std::time::Instant::now(); // audit:allow(wall-clock)
    f();
    t0.elapsed().as_secs_f64() * 1000.0
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::UNIX_EPOCH
}
