//! Fixture: raw socket I/O outside rbcast-net's transport module.
//! `cargo xtask audit --root crates/xtask/fixtures/raw-socket-io` must
//! exit non-zero with `raw-socket-io` findings (and only those — the
//! socket opens below use `expect` so `unwrap-panic` stays quiet).

pub fn sidechannel() -> std::net::UdpSocket {
    std::net::UdpSocket::bind("127.0.0.1:0").expect("fixture bind")
}

pub fn control_plane(addr: &str) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}
