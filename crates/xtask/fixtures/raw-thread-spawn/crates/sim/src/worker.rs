//! Fixture: ad-hoc threads outside the engine module.
//! `cargo xtask audit --root crates/xtask/fixtures/raw-thread-spawn`
//! must exit non-zero with `raw-thread-spawn` findings.

/// Fans work out by hand instead of going through
/// `rbcast_core::engine::run_indexed` — result order then depends on
/// thread scheduling, which is exactly what the rule forbids.
pub fn fan_out(tasks: Vec<u64>) -> Vec<u64> {
    let mut handles = Vec::new();
    for task in tasks {
        handles.push(std::thread::spawn(move || task * 2));
    }
    let mut out = Vec::new();
    std::thread::scope(|_s| {});
    for h in handles {
        if let Ok(v) = h.join() {
            out.push(v);
        }
    }
    out
}
