//! Fixture: annotations that no longer suppress anything.
//! `cargo xtask audit --root crates/xtask/fixtures/stale-allow` must
//! exit non-zero with `stale-allow` findings.

pub fn sum(values: &[u64]) -> u64 {
    let mut acc = 0; // audit:allow(hot-loop-alloc)
    for v in values {
        acc += v;
    }
    acc
}

// audit:allow(panic) rationale not introduced by a colon never attaches
pub fn double(n: u64) -> u64 {
    n + n
}
