//! Fixture: an annotation naming no known rule.
//! `cargo xtask audit --root crates/xtask/fixtures/unknown-allow` must
//! exit non-zero with `unknown-allow` findings.

pub fn relay_count(n: u32) -> u32 {
    n + 1 // audit:allow(pancake)
}
