//! Fixture: HashMap/HashSet iteration in an order-sensitive crate.
//! `cargo xtask audit --root crates/xtask/fixtures/unordered-iteration`
//! must exit non-zero with `unordered-iteration` findings.

use std::collections::{HashMap, HashSet};

pub fn tally(events: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::new();
    for &(node, _) in events {
        *counts.entry(node).or_insert(0) += 1;
        seen.insert(node);
    }
    // Nondeterministic drain order: exactly what the rule forbids.
    counts.into_iter().collect()
}
