//! Fixture: unwrap/panic in library code.
//! `cargo xtask audit --root crates/xtask/fixtures/unwrap-panic`
//! must exit non-zero with `unwrap-panic` findings.

pub fn head(values: &[u32]) -> u32 {
    *values.first().unwrap()
}

pub fn must_be_even(n: u32) -> u32 {
    if n % 2 != 0 {
        panic!("odd input");
    }
    n / 2
}

pub fn guarded(n: u32) -> u32 {
    if n == 0 {
        // Prose that merely mentions audit:allow(panic) mid-sentence must
        // not suppress the next line — the old line-based audit did.
        panic!("zero input");
    }
    n
}
