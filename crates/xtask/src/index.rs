//! Workspace-wide symbol index.
//!
//! Built in one pass over every analysed file, the index records where
//! each named item (`fn`, `struct`, `enum`, `trait`, `mod`, `const`,
//! `static`, `type`) is defined. Rules use it to resolve their *exempt
//! modules by meaning instead of by path*: the `obs-wallclock` rule,
//! for example, exempts "the file that defines `fn span`" — so the
//! exemption follows the code if `obs.rs` is ever renamed or split,
//! and falls back to the historical path when the symbol cannot be
//! resolved uniquely (e.g. inside the fixture trees, which are audited
//! as miniature workspaces of their own).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lexer::TokenKind;
use crate::model::FileModel;

/// Item kinds the index records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ItemKind {
    /// `fn` item.
    Fn,
    /// `struct` item.
    Struct,
    /// `enum` item.
    Enum,
    /// `trait` item.
    Trait,
    /// `mod` item.
    Mod,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
}

impl ItemKind {
    fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "fn" => ItemKind::Fn,
            "struct" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            "trait" => ItemKind::Trait,
            "mod" => ItemKind::Mod,
            "const" => ItemKind::Const,
            "static" => ItemKind::Static,
            "type" => ItemKind::TypeAlias,
            _ => return None,
        })
    }
}

/// One item definition.
#[derive(Debug, Clone)]
pub struct ItemDef {
    /// Item kind.
    pub kind: ItemKind,
    /// File the definition lives in, relative to the audit root.
    pub file: PathBuf,
    /// 1-based line of the defining keyword.
    pub line: usize,
    /// Whether the definition sits inside a test region.
    pub in_test: bool,
}

/// Symbol index over every file the audit loaded.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    defs: BTreeMap<(ItemKind, String), Vec<ItemDef>>,
    files: usize,
}

impl WorkspaceIndex {
    /// Build the index over a set of analysed files.
    #[must_use]
    pub fn build(models: &[FileModel]) -> Self {
        let mut defs: BTreeMap<(ItemKind, String), Vec<ItemDef>> = BTreeMap::new();
        for m in models {
            for i in 0..m.code_len() {
                let t = m.ct(i);
                if t.kind != TokenKind::Ident {
                    continue;
                }
                let Some(kind) = ItemKind::from_keyword(&t.text) else {
                    continue;
                };
                // `kw Name` with Name an identifier defines an item;
                // skip uses like `mod x;` vs `x::mod`? — a preceding
                // `::`/`.` token means this is not a definition keyword.
                if i > 0 && matches!(m.code_text(i - 1), "::" | "." | "->" | "<" | "&") {
                    continue;
                }
                // `const` in `const fn` / `const N: usize` — only index
                // when an identifier follows directly.
                let Some(next) = (i + 1 < m.code_len()).then(|| m.ct(i + 1)) else {
                    continue;
                };
                if next.kind != TokenKind::Ident || ItemKind::from_keyword(&next.text).is_some() {
                    continue;
                }
                defs.entry((kind, next.text.clone()))
                    .or_default()
                    .push(ItemDef {
                        kind,
                        file: m.rel.clone(),
                        line: t.line,
                        in_test: m.meta[i].in_test,
                    });
            }
        }
        WorkspaceIndex {
            defs,
            files: models.len(),
        }
    }

    /// Number of files indexed.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.files
    }

    /// Total number of recorded definitions.
    #[must_use]
    pub fn def_count(&self) -> usize {
        self.defs.values().map(Vec::len).sum()
    }

    /// All definitions of `name` as a `kind` item.
    #[must_use]
    pub fn defs(&self, kind: ItemKind, name: &str) -> &[ItemDef] {
        self.defs
            .get(&(kind, name.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// The unique non-test file defining `name` as a `kind` item, or
    /// `None` when the symbol is missing or ambiguous.
    #[must_use]
    pub fn unique_defining_file(&self, kind: ItemKind, name: &str) -> Option<&Path> {
        let mut files: Vec<&Path> = self
            .defs(kind, name)
            .iter()
            .filter(|d| !d.in_test)
            .map(|d| d.file.as_path())
            .collect();
        files.sort_unstable();
        files.dedup();
        match files.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }

    /// Resolve an exempt module: the unique defining file of
    /// `(kind, name)` when the index knows it, else `fallback` — which
    /// keeps fixture trees (miniature workspaces without the real
    /// definitions) anchored to the historical layout.
    #[must_use]
    pub fn exempt_file(&self, kind: ItemKind, name: &str, fallback: &'static str) -> PathBuf {
        self.unique_defining_file(kind, name)
            .map_or_else(|| PathBuf::from(fallback), Path::to_path_buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn models(files: &[(&str, &str)]) -> Vec<FileModel> {
        files
            .iter()
            .map(|(rel, src)| FileModel::parse(Path::new(rel), src))
            .collect()
    }

    #[test]
    fn indexes_items_across_files() {
        let ms = models(&[
            (
                "crates/a/src/lib.rs",
                "pub fn span() {}\npub struct Stopwatch;\n",
            ),
            (
                "crates/b/src/lib.rs",
                "pub fn other() {}\nmod inner { pub fn span_like() {} }\n",
            ),
        ]);
        let idx = WorkspaceIndex::build(&ms);
        assert_eq!(idx.file_count(), 2);
        assert_eq!(
            idx.unique_defining_file(ItemKind::Fn, "span"),
            Some(Path::new("crates/a/src/lib.rs"))
        );
        assert_eq!(
            idx.unique_defining_file(ItemKind::Struct, "Stopwatch"),
            Some(Path::new("crates/a/src/lib.rs"))
        );
        assert_eq!(idx.unique_defining_file(ItemKind::Fn, "absent"), None);
    }

    #[test]
    fn ambiguous_or_test_only_defs_resolve_to_fallback() {
        let ms = models(&[
            ("crates/a/src/lib.rs", "pub fn dup() {}\n"),
            ("crates/b/src/lib.rs", "pub fn dup() {}\n"),
            (
                "crates/c/src/lib.rs",
                "#[cfg(test)]\nmod t { fn only_in_test() {} }\n",
            ),
        ]);
        let idx = WorkspaceIndex::build(&ms);
        assert_eq!(idx.unique_defining_file(ItemKind::Fn, "dup"), None);
        assert_eq!(
            idx.exempt_file(ItemKind::Fn, "dup", "crates/a/src/lib.rs"),
            PathBuf::from("crates/a/src/lib.rs")
        );
        assert_eq!(idx.unique_defining_file(ItemKind::Fn, "only_in_test"), None);
    }

    #[test]
    fn const_fn_indexes_the_fn_not_a_const() {
        let ms = models(&[(
            "crates/a/src/lib.rs",
            "pub const fn f() -> u32 { 1 }\nconst LIMIT: u32 = 3;\n",
        )]);
        let idx = WorkspaceIndex::build(&ms);
        assert_eq!(idx.defs(ItemKind::Const, "LIMIT").len(), 1);
        assert_eq!(idx.defs(ItemKind::Fn, "f").len(), 1);
        assert!(idx.defs(ItemKind::Const, "fn").is_empty());
        assert!(idx.def_count() >= 2);
    }
}
