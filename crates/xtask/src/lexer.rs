//! Hand-rolled, span-accurate Rust lexer for the audit engine.
//!
//! The lexer turns source text into a flat token stream in one pass,
//! with no allocation beyond the token vector. Every token carries its
//! char-offset span and 1-based line/column, so findings point at the
//! exact place a rule matched even when the construct spans lines —
//! the structural failure mode of the old per-line model.
//!
//! Coverage (everything the audit rules and the structural layer in
//! [`crate::model`] need):
//!
//! * identifiers and keywords, including raw identifiers `r#type`;
//! * lifetimes (`'a`, `'static`, `'_`) vs char literals (`'a'`,
//!   `'\u{10FFFF}'`, `b'x'`), resolved by real lookahead instead of a
//!   fixed window;
//! * all string forms: `"…"` with escapes, raw `r"…"` / `r#"…"#` at any
//!   hash depth, byte `b"…"`, raw byte `br#"…"#`;
//! * numeric literals with suffixes (`1_000u64`, `2.`, `1.5e-3f64`),
//!   distinguishing `1.0` (float) from `0..n` (range) and `1.max(2)`
//!   (method call);
//! * line comments, outer/inner doc comments, nested block comments;
//! * punctuation under maximal munch (`::`, `..=`, `<<=`, `->`, …).
//!
//! The stream is *lossless*: concatenating every token's source text
//! plus the inter-token gaps reproduces the input byte-for-byte, which
//! is what lets the differential self-test compare this lexer against
//! the legacy line blanker over the whole workspace.

use std::fmt;

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// Lifetime such as `'a` (the quote is part of the token).
    Lifetime,
    /// Integer literal, with any suffix (`7`, `0xff`, `1_000u64`).
    Int,
    /// Float literal, with any suffix (`1.0`, `2.`, `1e9f64`).
    Float,
    /// String literal `"…"` (escapes included in the text).
    Str,
    /// Raw string literal `r"…"` / `r#"…"#`.
    RawStr,
    /// Byte string literal `b"…"`.
    ByteStr,
    /// Raw byte string literal `br"…"` / `br#"…"#`.
    RawByteStr,
    /// Char literal `'x'`.
    Char,
    /// Byte literal `b'x'`.
    Byte,
    /// Punctuation / operator, maximal munch (`::`, `<<`, `..=`, `+`).
    Punct,
    /// `// …` comment (not a doc comment).
    LineComment,
    /// `/// …` or `//! …` doc comment.
    DocComment,
    /// `/* … */` block comment, nesting respected (doc blocks too).
    BlockComment,
}

impl TokenKind {
    /// Trivia does not participate in code queries (comments only —
    /// whitespace never becomes a token).
    #[must_use]
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment | TokenKind::DocComment | TokenKind::BlockComment
        )
    }

    /// String-ish literal whose *contents* must be blanked before token
    /// text is searched (quotes/prefix stay visible).
    #[must_use]
    pub fn is_textual_literal(self) -> bool {
        matches!(
            self,
            TokenKind::Str
                | TokenKind::RawStr
                | TokenKind::ByteStr
                | TokenKind::RawByteStr
                | TokenKind::Char
                | TokenKind::Byte
        )
    }
}

/// One lexed token with its exact source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source text, verbatim (owned; spans survive the source buffer).
    pub text: String,
    /// Char offset of the first char (0-based, chars not bytes).
    pub start: usize,
    /// Char offset one past the last char.
    pub end: usize,
    /// 1-based line of the first char.
    pub line: usize,
    /// 1-based column (in chars) of the first char.
    pub col: usize,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}({:?})@{}:{}",
            self.kind, self.text, self.line, self.col
        )
    }
}

/// Multi-char operators, longest first so maximal munch is a prefix scan.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lex `text` into a token stream. Never fails: malformed input (e.g.
/// an unterminated string) produces a best-effort token running to end
/// of input, so the audit still sees the rest of a broken file as far
/// as structurally possible.
#[must_use]
pub fn lex(text: &str) -> Vec<Token> {
    Lexer::new(text).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn new(text: &str) -> Self {
        Lexer {
            chars: text.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advance one char, maintaining line/col.
    fn bump(&mut self) {
        if let Some(c) = self.chars.get(self.pos) {
            if *c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.pos += 1;
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: usize, col: usize) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token {
            kind,
            text,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (start, line, col) = (self.pos, self.line, self.col);
            match c {
                c if c.is_whitespace() => self.bump(),
                '/' if self.peek(1) == Some('/') => {
                    let doc = matches!(self.peek(2), Some('/') | Some('!'))
                        // `////…` dividers are plain comments, not docs.
                        && !(self.peek(2) == Some('/') && self.peek(3) == Some('/'));
                    while self.peek(0).is_some_and(|c| c != '\n') {
                        self.bump();
                    }
                    let kind = if doc {
                        TokenKind::DocComment
                    } else {
                        TokenKind::LineComment
                    };
                    self.emit(kind, start, line, col);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment(start, line, col);
                }
                '"' => self.string(start, line, col, TokenKind::Str),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(start, line, col, TokenKind::ByteStr);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(start, line, col, TokenKind::Byte);
                }
                'b' if self.peek(1) == Some('r') && self.raw_str_at(2) => {
                    self.bump();
                    self.bump();
                    self.raw_string(start, line, col, TokenKind::RawByteStr);
                }
                'r' if self.raw_str_at(1) => {
                    self.bump();
                    self.raw_string(start, line, col, TokenKind::RawStr);
                }
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier r#type.
                    self.bump();
                    self.bump();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line, col);
                }
                '\'' => self.quote(start, line, col),
                c if is_ident_start(c) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line, col);
                }
                c if c.is_ascii_digit() => self.number(start, line, col),
                _ => {
                    // Punctuation: maximal munch against the operator table.
                    let matched = OPERATORS.iter().find(|op| self.lookahead_is(op));
                    if let Some(op) = matched {
                        for _ in 0..op.chars().count() {
                            self.bump();
                        }
                    } else {
                        self.bump();
                    }
                    self.emit(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    fn lookahead_is(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }

    /// Is `r` at offset `at` (hashes then a quote) the start of a raw
    /// string body? `self.pos + at` points just past the `r`.
    fn raw_str_at(&self, at: usize) -> bool {
        let mut j = at;
        while self.peek(j) == Some('#') {
            j += 1;
        }
        self.peek(j) == Some('"')
    }

    fn block_comment(&mut self, start: usize, line: usize, col: usize) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
        self.emit(TokenKind::BlockComment, start, line, col);
    }

    /// Lex a `"`-delimited string starting at the current quote.
    fn string(&mut self, start: usize, line: usize, col: usize, kind: TokenKind) {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some('\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
        self.emit(kind, start, line, col);
    }

    /// Lex a raw string: hashes, quote, content, quote, matching hashes.
    fn raw_string(&mut self, start: usize, line: usize, col: usize, kind: TokenKind) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some('"') => {
                    // Candidate close: quote + `hashes` hashes.
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(1 + seen) == Some('#') {
                        seen += 1;
                    }
                    if seen == hashes {
                        for _ in 0..=hashes {
                            self.bump();
                        }
                        break;
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
                None => break,
            }
        }
        self.emit(kind, start, line, col);
    }

    /// Lex a `'…'` char/byte literal starting at the current quote.
    fn char_lit(&mut self, start: usize, line: usize, col: usize, kind: TokenKind) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                self.bump();
                // The escaped char itself may be a quote (`'\''`).
                if self.peek(0).is_some() {
                    self.bump();
                }
                // Longer escape bodies run to the closing quote
                // (`\u{…}`, `\x41`).
                while self.peek(0).is_some_and(|c| c != '\'' && c != '\n') {
                    self.bump();
                }
            }
            Some(_) => self.bump(),
            None => {}
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
        self.emit(kind, start, line, col);
    }

    /// Disambiguate `'a'` (char) from `'a` (lifetime) at a quote.
    ///
    /// A quote starts a char literal when the escape form follows
    /// (`'\…`), or when exactly one char is followed by a closing quote.
    /// Everything else (`'a`, `'static`, `'_`) is a lifetime. Unlike the
    /// legacy model there is no fixed lookahead window: the decision
    /// reads as far as the candidate identifier runs.
    fn quote(&mut self, start: usize, line: usize, col: usize) {
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(c) if is_ident_start(c) => {
                // `'x'` is a char; `'x` / `'xyz` are lifetimes. Scan the
                // identifier run and see whether a quote terminates it.
                let mut j = 2;
                while self.peek(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                j == 2 && self.peek(j) == Some('\'')
            }
            Some('\'') => false, // `''` never valid; treat as puncts
            Some(_) => true,     // '(' , '.' , '😀' — single-char literal
            None => false,
        };
        if is_char {
            self.char_lit(start, line, col, TokenKind::Char);
        } else {
            // Lifetime (or stray quote): consume quote + identifier run.
            self.bump();
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            self.emit(TokenKind::Lifetime, start, line, col);
        }
    }

    /// Lex a numeric literal (int or float, with suffix).
    fn number(&mut self, start: usize, line: usize, col: usize) {
        let mut float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
            {
                self.bump();
            }
            self.emit(TokenKind::Int, start, line, col);
            return;
        }
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        // `.` joins the literal only when this is really a fractional
        // part: `1.0` and `2.` are floats; `0..n` is a range and
        // `1.max()` is a method call on an integer.
        if self.peek(0) == Some('.') {
            let after = self.peek(1);
            let joins = match after {
                Some(c) if c.is_ascii_digit() => true,
                Some('.') => false,
                Some(c) if is_ident_start(c) => false,
                _ => true, // `2.` then `;` / `)` / EOL — trailing-dot float
            };
            if joins {
                float = true;
                self.bump();
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some('+' | '-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
        {
            float = true;
            self.bump();
            if matches!(self.peek(0), Some('+' | '-')) {
                self.bump();
            }
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.bump();
            }
        }
        // Suffix (`u64`, `f64`, `usize`…) glues onto the literal.
        if self.peek(0).is_some_and(is_ident_start) {
            let suffix_start = self.pos;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
            if suffix.starts_with('f') {
                float = true;
            }
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.emit(kind, start, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_raw_idents() {
        let t = kinds("fn r#type foo_1");
        assert_eq!(
            t,
            vec![
                (TokenKind::Ident, "fn".into()),
                (TokenKind::Ident, "r#type".into()),
                (TokenKind::Ident, "foo_1".into()),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("<'a> 'x' '\\n' 'static b'q' '_'");
        assert_eq!(
            t,
            vec![
                (TokenKind::Punct, "<".into()),
                (TokenKind::Lifetime, "'a".into()),
                (TokenKind::Punct, ">".into()),
                (TokenKind::Char, "'x'".into()),
                (TokenKind::Char, "'\\n'".into()),
                (TokenKind::Lifetime, "'static".into()),
                (TokenKind::Byte, "b'q'".into()),
                (TokenKind::Char, "'_'".into()),
            ]
        );
    }

    #[test]
    fn long_escape_char_literal_has_no_window_limit() {
        let t = kinds(r"'\u{10FFFF}'");
        assert_eq!(t, vec![(TokenKind::Char, r"'\u{10FFFF}'".into())]);
    }

    #[test]
    fn string_forms() {
        let t = kinds(r####""a\"b" r"raw" r##"h"# s"## b"by" br#"rb"#"####);
        assert_eq!(
            t,
            vec![
                (TokenKind::Str, r#""a\"b""#.into()),
                (TokenKind::RawStr, r#"r"raw""#.into()),
                (TokenKind::RawStr, r###"r##"h"# s"##"###.into()),
                (TokenKind::ByteStr, r#"b"by""#.into()),
                (TokenKind::RawByteStr, r##"br#"rb"#"##.into()),
            ]
        );
    }

    #[test]
    fn raw_string_with_embedded_hash_quote() {
        // The `"#` inside closes only at two hashes.
        let t = kinds(r###"r##"x "# y"##"###);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].0, TokenKind::RawStr);
    }

    #[test]
    fn numbers_ranges_and_method_calls() {
        let t = kinds("1.0 2. 0..n 1.max(2) 0xff_u32 1_000u64 1.5e-3f64 pair.0");
        let kindlist: Vec<TokenKind> = t.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kindlist,
            vec![
                TokenKind::Float, // 1.0
                TokenKind::Float, // 2.
                TokenKind::Int,   // 0
                TokenKind::Punct, // ..
                TokenKind::Ident, // n
                TokenKind::Int,   // 1
                TokenKind::Punct, // .
                TokenKind::Ident, // max
                TokenKind::Punct, // (
                TokenKind::Int,   // 2
                TokenKind::Punct, // )
                TokenKind::Int,   // 0xff_u32
                TokenKind::Int,   // 1_000u64
                TokenKind::Float, // 1.5e-3f64
                TokenKind::Ident, // pair
                TokenKind::Punct, // .
                TokenKind::Int,   // 0
            ]
        );
    }

    #[test]
    fn comments_nested_and_doc() {
        let t = kinds("a // line\n/// doc\n//! inner\n//// divider\n/* b /* c */ d */ e");
        assert_eq!(t[0], (TokenKind::Ident, "a".into()));
        assert_eq!(t[1].0, TokenKind::LineComment);
        assert_eq!(t[2].0, TokenKind::DocComment);
        assert_eq!(t[3].0, TokenKind::DocComment);
        assert_eq!(t[4].0, TokenKind::LineComment);
        assert_eq!(t[5].0, TokenKind::BlockComment);
        assert_eq!(t[6], (TokenKind::Ident, "e".into()));
    }

    #[test]
    fn operators_maximal_munch() {
        let t = kinds("a::b <<= ..= x << 2");
        let texts: Vec<&str> = t.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(texts, vec!["a", "::", "b", "<<=", "..=", "x", "<<", "2"]);
    }

    #[test]
    fn spans_are_line_and_column_accurate() {
        let toks = lex("let x = 1;\n  Instant::now()\n");
        let instant = toks.iter().find(|t| t.text == "Instant").expect("lexed");
        assert_eq!((instant.line, instant.col), (2, 3));
        let now = toks.iter().find(|t| t.text == "now").expect("lexed");
        assert_eq!((now.line, now.col), (2, 12));
    }

    #[test]
    fn stream_is_lossless() {
        let src = "fn f<'a>(s: &'a str) -> u32 { s.len() as u32 } // done\n";
        let toks = lex(src);
        let mut rebuilt: Vec<char> = src
            .chars()
            .map(|c| if c.is_whitespace() { c } else { '\0' })
            .collect();
        for t in &toks {
            for (i, c) in t.text.chars().enumerate() {
                rebuilt[t.start + i] = c;
            }
        }
        assert_eq!(rebuilt.iter().collect::<String>(), src);
    }
}
