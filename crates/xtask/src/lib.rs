//! Workspace audit engine behind `cargo xtask audit`.
//!
//! The audit enforces repo-specific invariants that rustc and clippy do
//! not know about (see `DESIGN.md`, "Audit gates"):
//!
//! * `unordered-iteration` — no `HashMap`/`HashSet` in the sim /
//!   protocols crates, whose iteration order feeds the deterministic
//!   delivery trace.
//! * `float-eq` — no `==`/`!=` on floats in the grid / construct
//!   geometry crates.
//! * `unwrap-panic` — no `.unwrap()` / `panic!` in library code;
//!   `expect` with an invariant-naming message is the sanctioned escape.
//! * `nondeterminism` — no `thread_rng` / entropy seeding / wall-clock
//!   reads outside annotated measurement sites.
//! * `obs-wallclock` — raw `Instant::now` / `SystemTime` reads are
//!   confined to `rbcast-core::obs`; everything else times through
//!   `obs::span` or `obs::Stopwatch`.
//! * `raw-thread-spawn` — raw `std::thread` use is confined to
//!   `rbcast-core::engine`, the deterministic sweep executor.
//! * `catch-unwind` — `catch_unwind` is confined to
//!   `rbcast-core::supervisor`, so panic isolation always classifies,
//!   retries, and journals the failure.
//! * `adhoc-neighborhood` — `torus.neighborhood` scans are confined to
//!   the grid arena module; everything else reads the shared CSR
//!   `NeighborTable`.
//! * `lint-header` — every library crate root carries
//!   `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.
//!
//! Escape hatch: a `// audit:allow(<rule>)` comment on (or directly
//! above) the offending line, which doubles as in-source documentation
//! of why the exception is sound.
//!
//! Every rule ships a fixture tree under `crates/xtask/fixtures/` that
//! triggers exactly that rule; `cargo xtask audit --self-test` (and the
//! unit tests here) fail if any rule stops firing on its fixture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rules;
pub mod source;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{all_rules, rule_by_id, Rule, Violation};
use source::SourceFile;

/// Audit failure (I/O or usage error), distinct from rule violations.
#[derive(Debug)]
pub enum AuditError {
    /// A file or directory could not be read.
    Io(PathBuf, io::Error),
    /// `--rule` named a rule that does not exist.
    UnknownRule(String),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Io(p, e) => write!(f, "cannot read {}: {e}", p.display()),
            AuditError::UnknownRule(id) => {
                write!(f, "unknown rule `{id}` (try `cargo xtask audit --list`)")
            }
        }
    }
}

/// Run the audit over `root`, optionally restricted to one rule id.
///
/// Returns all findings sorted by path, line, then rule.
pub fn run_audit(root: &Path, only: Option<&str>) -> Result<Vec<Violation>, AuditError> {
    if !root.is_dir() {
        // A mistyped --root must not masquerade as a clean audit.
        return Err(AuditError::Io(
            root.to_path_buf(),
            io::Error::new(io::ErrorKind::NotFound, "audit root is not a directory"),
        ));
    }
    let selected: Vec<&'static Rule> = match only {
        Some(id) => vec![rule_by_id(id).ok_or_else(|| AuditError::UnknownRule(id.to_string()))?],
        None => all_rules().iter().collect(),
    };

    // Union of scope prefixes across the selected rules.
    let mut prefixes: Vec<&str> = selected
        .iter()
        .flat_map(|r| r.scopes.iter().copied())
        .collect();
    prefixes.sort_unstable();
    prefixes.dedup();

    let mut files: Vec<PathBuf> = Vec::new();
    for prefix in prefixes {
        let dir = root.join(prefix);
        if dir.is_dir() {
            collect_rs_files(&dir, root, &mut files)?;
        }
    }
    files.sort();
    files.dedup();

    let mut violations = Vec::new();
    for rel in &files {
        let file = SourceFile::load(root, rel).map_err(|e| AuditError::Io(root.join(rel), e))?;
        for rule in &selected {
            if !rule.applies_to(rel) {
                continue;
            }
            for (line, message) in (rule.check)(&file) {
                violations.push(Violation {
                    path: rel.display().to_string(),
                    line,
                    rule: rule.id,
                    message,
                });
            }
        }
    }
    violations
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(violations)
}

/// Recursively collect `.rs` files under `dir`, pushing paths relative
/// to `root`.
fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    let entries = fs::read_dir(dir).map_err(|e| AuditError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| AuditError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, root, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(root)
                .expect("collect_rs_files walks only below root")
                .to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Locate the workspace root from the xtask manifest directory.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask always sits two levels below the workspace root")
        .to_path_buf()
}

/// Outcome of one fixture in the self-test.
#[derive(Debug)]
pub struct FixtureReport {
    /// Rule the fixture targets (`clean` for the no-findings fixture).
    pub name: String,
    /// Whether the fixture behaved as expected.
    pub ok: bool,
    /// Human-readable detail.
    pub detail: String,
}

/// Run every rule against its fixture tree and the `clean` fixture.
///
/// Each `fixtures/<rule-id>/` tree must produce at least one finding of
/// that rule (and no others); `fixtures/clean/` must produce none. This
/// is the proof that each gate actually fires.
pub fn self_test(fixtures_dir: &Path) -> Result<Vec<FixtureReport>, AuditError> {
    let mut reports = Vec::new();
    for rule in all_rules() {
        let root = fixtures_dir.join(rule.id);
        let violations = run_audit(&root, None)?;
        let hits = violations.iter().filter(|v| v.rule == rule.id).count();
        let strays: Vec<&Violation> = violations.iter().filter(|v| v.rule != rule.id).collect();
        let ok = hits > 0 && strays.is_empty();
        let detail = if ok {
            format!("{hits} finding(s), rule fires")
        } else if hits == 0 {
            "rule did NOT fire on its fixture".to_string()
        } else {
            format!(
                "fixture also triggered other rules: {:?}",
                strays.iter().map(|v| v.rule).collect::<Vec<_>>()
            )
        };
        reports.push(FixtureReport {
            name: rule.id.to_string(),
            ok,
            detail,
        });
    }

    let clean_root = fixtures_dir.join("clean");
    let clean = run_audit(&clean_root, None)?;
    reports.push(FixtureReport {
        name: "clean".to_string(),
        ok: clean.is_empty(),
        detail: if clean.is_empty() {
            "no findings, annotations and test-mod skipping honoured".to_string()
        } else {
            format!("unexpected findings: {clean:?}")
        },
    });
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> PathBuf {
        workspace_root().join("crates/xtask/fixtures")
    }

    #[test]
    fn every_rule_fires_on_its_fixture_and_clean_is_clean() {
        let reports = self_test(&fixtures()).expect("fixtures are readable");
        for r in &reports {
            assert!(r.ok, "fixture `{}` failed: {}", r.name, r.detail);
        }
        // One report per rule plus the clean fixture.
        assert_eq!(reports.len(), all_rules().len() + 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let err = run_audit(&fixtures().join("clean"), Some("no-such-rule"));
        assert!(matches!(err, Err(AuditError::UnknownRule(_))));
    }

    #[test]
    fn single_rule_filter_restricts_findings() {
        let root = fixtures().join("unordered-iteration");
        let all = run_audit(&root, None).expect("fixture readable");
        let only = run_audit(&root, Some("float-eq")).expect("fixture readable");
        assert!(!all.is_empty());
        assert!(only.is_empty());
    }

    #[test]
    fn repository_itself_is_audit_clean() {
        let violations = run_audit(&workspace_root(), None).expect("workspace readable");
        assert!(
            violations.is_empty(),
            "the workspace must pass its own audit:\n{}",
            violations
                .iter()
                .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn missing_root_is_an_error_not_a_clean_pass() {
        let err = run_audit(Path::new("/no/such/audit/root"), None);
        assert!(matches!(err, Err(AuditError::Io(_, _))));
    }

    #[test]
    fn findings_are_sorted_and_stable() {
        let root = fixtures().join("unwrap-panic");
        let a = run_audit(&root, None).expect("fixture readable");
        let b = run_audit(&root, None).expect("fixture readable");
        let key = |v: &Violation| (v.path.clone(), v.line, v.rule);
        assert_eq!(
            a.iter().map(key).collect::<Vec<_>>(),
            b.iter().map(key).collect::<Vec<_>>()
        );
        let mut sorted = a.iter().map(key).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(sorted, a.iter().map(key).collect::<Vec<_>>());
    }
}
