//! Workspace audit engine behind `cargo xtask audit`.
//!
//! The audit enforces repo-specific invariants that rustc and clippy do
//! not know about (see `DESIGN.md`, "Static analysis & invariant
//! audit"). Since PR 6 it runs on a real token model instead of blanked
//! lines: [`lexer`] produces a span-accurate token stream, [`model`]
//! layers structure on top (brace nesting, `#[cfg(test)]` regions, loop
//! depth, `fn` spans, suppression sites), [`index`] builds a
//! workspace-wide symbol index in the same pass, and [`rules`] expresses
//! every check as a token query — multi-line constructs, string/comment
//! immunity, and function-scoped dataflow all come from the model, not
//! from per-rule heuristics.
//!
//! Suppression lifecycle: rules emit *raw* findings and this engine
//! applies `// audit:allow(<name>)` sites centrally, which is what makes
//! the two meta-diagnostics possible:
//!
//! * [`rules::UNKNOWN_ALLOW`] — an annotation naming no known rule
//!   (typo'd names used to be silently ignored);
//! * [`rules::STALE_ALLOW`] — an annotation that no longer suppresses
//!   any finding (stale escapes used to rot silently).
//!
//! Every rule (and both meta-diagnostics) ships a fixture tree under
//! `crates/xtask/fixtures/`; `cargo xtask audit --self-test` fails if
//! any rule stops firing on its fixture. `--format json` emits a
//! SARIF-lite report for CI, and `--baseline FILE` filters known
//! findings for incremental adoption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod source;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use index::WorkspaceIndex;
use model::FileModel;
use rules::{
    all_rules, allow_name_matches, is_known_allow_name, rule_by_id, Ctx, Violation, STALE_ALLOW,
    STALE_ALLOW_FIX, UNKNOWN_ALLOW, UNKNOWN_ALLOW_FIX,
};

/// Audit failure (I/O or usage error), distinct from rule violations.
#[derive(Debug)]
pub enum AuditError {
    /// A file or directory could not be read.
    Io(PathBuf, io::Error),
    /// `--rule` named a rule that does not exist.
    UnknownRule(String),
    /// A baseline file could not be parsed.
    Baseline(PathBuf, String),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Io(p, e) => write!(f, "cannot read {}: {e}", p.display()),
            AuditError::UnknownRule(id) => {
                write!(f, "unknown rule `{id}` (try `cargo xtask audit --list`)")
            }
            AuditError::Baseline(p, why) => {
                write!(f, "malformed baseline {}: {why}", p.display())
            }
        }
    }
}

/// What `--rule` selected.
enum Selection {
    All,
    Rule(&'static str),
    Meta(&'static str),
}

fn resolve_selection(only: Option<&str>) -> Result<Selection, AuditError> {
    match only {
        None => Ok(Selection::All),
        Some(id) if id == STALE_ALLOW || id == UNKNOWN_ALLOW => {
            // Meta ids are static; reuse the canonical &'static str.
            Ok(Selection::Meta(if id == STALE_ALLOW {
                STALE_ALLOW
            } else {
                UNKNOWN_ALLOW
            }))
        }
        Some(id) => rule_by_id(id)
            .map(|r| Selection::Rule(r.id))
            .ok_or_else(|| AuditError::UnknownRule(id.to_string())),
    }
}

/// Run the audit over `root`, optionally restricted to one rule id
/// (meta ids `stale-allow` / `unknown-allow` are valid selections).
///
/// Returns all findings sorted by path, line, then rule. Every rule is
/// always *evaluated* — suppression-usage tracking needs the full
/// picture — and the selection filters what is reported.
pub fn run_audit(root: &Path, only: Option<&str>) -> Result<Vec<Violation>, AuditError> {
    if !root.is_dir() {
        // A mistyped --root must not masquerade as a clean audit.
        return Err(AuditError::Io(
            root.to_path_buf(),
            io::Error::new(io::ErrorKind::NotFound, "audit root is not a directory"),
        ));
    }
    let selection = resolve_selection(only)?;

    // Union of scope prefixes across all rules: the index and the
    // suppression lifecycle always see the whole audited surface.
    let mut prefixes: Vec<&str> = all_rules()
        .iter()
        .flat_map(|r| r.scopes.iter().copied())
        .collect();
    prefixes.sort_unstable();
    prefixes.dedup();

    let mut files: Vec<PathBuf> = Vec::new();
    for prefix in prefixes {
        let dir = root.join(prefix);
        if dir.is_dir() {
            collect_rs_files(&dir, root, &mut files)?;
        }
    }
    files.sort();
    files.dedup();

    // One pass: lex + model every file, then index the lot.
    let mut models: Vec<FileModel> = Vec::with_capacity(files.len());
    for rel in &files {
        let text =
            fs::read_to_string(root.join(rel)).map_err(|e| AuditError::Io(root.join(rel), e))?;
        models.push(FileModel::parse(rel, &text));
    }
    let index = WorkspaceIndex::build(&models);
    let ctx = Ctx { index: &index };

    let mut violations: Vec<Violation> = Vec::new();
    for m in &models {
        let path = m.rel.display().to_string();
        // (allow-site idx, name idx) pairs consumed by a suppression.
        let mut used: BTreeSet<(usize, usize)> = BTreeSet::new();

        for rule in all_rules() {
            if !rule.applies_to(&m.rel) {
                continue;
            }
            for f in (rule.check)(m, &ctx) {
                let mut suppressed = false;
                for (si, site) in m.allows.iter().enumerate() {
                    if site.covers != Some(f.line) {
                        continue;
                    }
                    for (ni, name) in site.names.iter().enumerate() {
                        if allow_name_matches(rule, name) {
                            used.insert((si, ni));
                            suppressed = true;
                        }
                    }
                }
                if !suppressed && selected(&selection, rule.id) {
                    violations.push(Violation {
                        path: path.clone(),
                        line: f.line,
                        col: f.col,
                        rule: rule.id,
                        message: f.message,
                        fix: rule.fix,
                    });
                }
            }
        }

        // Suppression lifecycle: unknown names are hard errors, and
        // every known name must still be earning its keep.
        for (si, site) in m.allows.iter().enumerate() {
            for (ni, name) in site.names.iter().enumerate() {
                if !is_known_allow_name(name) {
                    if selected(&selection, UNKNOWN_ALLOW) {
                        violations.push(Violation {
                            path: path.clone(),
                            line: site.line,
                            col: 1,
                            rule: UNKNOWN_ALLOW,
                            message: format!(
                                "audit:allow({name}) names no known rule — annotations \
                                 with typo'd names are silently dead; known names: \
                                 rule ids plus their allow-names (`cargo xtask audit \
                                 --list`)"
                            ),
                            fix: UNKNOWN_ALLOW_FIX,
                        });
                    }
                } else if !used.contains(&(si, ni)) && selected(&selection, STALE_ALLOW) {
                    violations.push(Violation {
                        path: path.clone(),
                        line: site.line,
                        col: 1,
                        rule: STALE_ALLOW,
                        message: format!(
                            "audit:allow({name}) suppresses nothing: no `{name}` \
                             finding on the line it covers; stale escapes rot into \
                             silent holes in the gate — delete or re-anchor it"
                        ),
                        fix: STALE_ALLOW_FIX,
                    });
                }
            }
            if let (Some(why), true) = (&site.malformed, selected(&selection, STALE_ALLOW)) {
                violations.push(Violation {
                    path: path.clone(),
                    line: site.line,
                    col: 1,
                    rule: STALE_ALLOW,
                    message: format!("audit:allow annotation does not attach: {why}"),
                    fix: STALE_ALLOW_FIX,
                });
            }
        }
    }

    violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.col).cmp(&(b.path.as_str(), b.line, b.rule, b.col))
    });
    Ok(violations)
}

fn selected(sel: &Selection, rule_id: &str) -> bool {
    match sel {
        Selection::All => true,
        Selection::Rule(id) | Selection::Meta(id) => *id == rule_id,
    }
}

/// Recursively collect `.rs` files under `dir`, pushing paths relative
/// to `root`.
fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    let entries = fs::read_dir(dir).map_err(|e| AuditError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| AuditError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, root, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(root)
                .expect("collect_rs_files walks only below root")
                .to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Locate the workspace root from the xtask manifest directory.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask always sits two levels below the workspace root")
        .to_path_buf()
}

// ---------------------------------------------------------------------
// JSON output (SARIF-lite) and baselines
// ---------------------------------------------------------------------

/// Escape a string for embedding in JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_finding(v: &Violation) -> String {
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"fix\":\"{}\"}}",
        json_escape(v.rule),
        json_escape(&v.path),
        v.line,
        v.col,
        json_escape(&v.message),
        json_escape(v.fix),
    )
}

/// Render the audit result as a SARIF-lite JSON document: schema tag,
/// rule inventory, and one finding object per violation (rule id, span,
/// message, fix direction). One finding per line keeps the document
/// greppable and the baseline loader trivial.
#[must_use]
pub fn render_json(violations: &[Violation]) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"rbcast-audit/1\",");
    out.push_str(&format!(
        "\"rules\":{},\"clean\":{},\"finding_count\":{},\"findings\":[",
        all_rules().len() + 2, // + the two meta-diagnostics
        violations.is_empty(),
        violations.len()
    ));
    for (i, v) in violations.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&render_finding(v));
    }
    out.push_str("\n]}\n");
    out
}

/// A baseline: the set of `(rule, path, line)` triples to ignore.
pub type Baseline = BTreeSet<(String, String, usize)>;

/// Write `violations` as a baseline file (the JSON findings array).
pub fn write_baseline(path: &Path, violations: &[Violation]) -> io::Result<()> {
    fs::write(path, render_json(violations))
}

fn field_str<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":\"");
    let start = obj.find(&tag)? + tag.len();
    let end = obj[start..].find('"')? + start;
    Some(&obj[start..end])
}

fn field_num(obj: &str, key: &str) -> Option<usize> {
    let tag = format!("\"{key}\":");
    let start = obj.find(&tag)? + tag.len();
    let digits: String = obj[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Load a baseline previously written by [`write_baseline`] (or
/// `--format json` output): one finding object per line.
pub fn load_baseline(path: &Path) -> Result<Baseline, AuditError> {
    let text = fs::read_to_string(path).map_err(|e| AuditError::Io(path.to_path_buf(), e))?;
    let mut out = Baseline::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') || !line.contains("\"rule\"") {
            continue;
        }
        let (rule, p, l) = match (
            field_str(line, "rule"),
            field_str(line, "path"),
            field_num(line, "line"),
        ) {
            (Some(r), Some(p), Some(l)) => (r.to_string(), p.to_string(), l),
            _ => {
                return Err(AuditError::Baseline(
                    path.to_path_buf(),
                    format!("cannot parse finding line: {line}"),
                ))
            }
        };
        out.insert((rule, p, l));
    }
    Ok(out)
}

/// Drop violations recorded in the baseline.
#[must_use]
pub fn apply_baseline(violations: Vec<Violation>, baseline: &Baseline) -> Vec<Violation> {
    violations
        .into_iter()
        .filter(|v| !baseline.contains(&(v.rule.to_string(), v.path.clone(), v.line)))
        .collect()
}

// ---------------------------------------------------------------------
// Fixture self-test
// ---------------------------------------------------------------------

/// Outcome of one fixture in the self-test.
#[derive(Debug)]
pub struct FixtureReport {
    /// Rule the fixture targets (`clean` for the no-findings fixture).
    pub name: String,
    /// Whether the fixture behaved as expected.
    pub ok: bool,
    /// Human-readable detail.
    pub detail: String,
}

fn fixture_report(fixtures_dir: &Path, id: &str) -> Result<FixtureReport, AuditError> {
    let root = fixtures_dir.join(id);
    let violations = run_audit(&root, None)?;
    let hits = violations.iter().filter(|v| v.rule == id).count();
    let strays: Vec<&Violation> = violations.iter().filter(|v| v.rule != id).collect();
    let ok = hits > 0 && strays.is_empty();
    let detail = if ok {
        format!("{hits} finding(s), rule fires")
    } else if hits == 0 {
        "rule did NOT fire on its fixture".to_string()
    } else {
        format!(
            "fixture also triggered other rules: {:?}",
            strays.iter().map(|v| v.rule).collect::<Vec<_>>()
        )
    };
    Ok(FixtureReport {
        name: id.to_string(),
        ok,
        detail,
    })
}

/// Run every rule (and both meta-diagnostics) against its fixture tree
/// and the `clean` fixture.
///
/// Each `fixtures/<rule-id>/` tree must produce at least one finding of
/// that rule (and no others); `fixtures/clean/` must produce none. This
/// is the proof that each gate actually fires.
pub fn self_test(fixtures_dir: &Path) -> Result<Vec<FixtureReport>, AuditError> {
    let mut reports = Vec::new();
    for rule in all_rules() {
        reports.push(fixture_report(fixtures_dir, rule.id)?);
    }
    for meta in [STALE_ALLOW, UNKNOWN_ALLOW] {
        reports.push(fixture_report(fixtures_dir, meta)?);
    }

    let clean_root = fixtures_dir.join("clean");
    let clean = run_audit(&clean_root, None)?;
    reports.push(FixtureReport {
        name: "clean".to_string(),
        ok: clean.is_empty(),
        detail: if clean.is_empty() {
            "no findings, annotations and test-mod skipping honoured".to_string()
        } else {
            format!("unexpected findings: {clean:?}")
        },
    });
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> PathBuf {
        workspace_root().join("crates/xtask/fixtures")
    }

    #[test]
    fn every_rule_fires_on_its_fixture_and_clean_is_clean() {
        let reports = self_test(&fixtures()).expect("fixtures are readable");
        for r in &reports {
            assert!(r.ok, "fixture `{}` failed: {}", r.name, r.detail);
        }
        // One report per rule, two meta-diagnostics, the clean fixture.
        assert_eq!(reports.len(), all_rules().len() + 3);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let err = run_audit(&fixtures().join("clean"), Some("no-such-rule"));
        assert!(matches!(err, Err(AuditError::UnknownRule(_))));
    }

    #[test]
    fn single_rule_filter_restricts_findings() {
        let root = fixtures().join("unordered-iteration");
        let all = run_audit(&root, None).expect("fixture readable");
        let only = run_audit(&root, Some("float-eq")).expect("fixture readable");
        assert!(!all.is_empty());
        assert!(only.is_empty());
    }

    #[test]
    fn meta_rule_ids_are_selectable() {
        let root = fixtures().join("stale-allow");
        let v = run_audit(&root, Some(STALE_ALLOW)).expect("fixture readable");
        assert!(!v.is_empty());
        assert!(v.iter().all(|x| x.rule == STALE_ALLOW));
    }

    #[test]
    fn repository_itself_is_audit_clean() {
        let violations = run_audit(&workspace_root(), None).expect("workspace readable");
        assert!(
            violations.is_empty(),
            "the workspace must pass its own audit:\n{}",
            violations
                .iter()
                .map(|v| format!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn missing_root_is_an_error_not_a_clean_pass() {
        let err = run_audit(Path::new("/no/such/audit/root"), None);
        assert!(matches!(err, Err(AuditError::Io(_, _))));
    }

    #[test]
    fn findings_are_sorted_and_stable() {
        let root = fixtures().join("unwrap-panic");
        let a = run_audit(&root, None).expect("fixture readable");
        let b = run_audit(&root, None).expect("fixture readable");
        let key = |v: &Violation| (v.path.clone(), v.line, v.rule);
        assert_eq!(
            a.iter().map(key).collect::<Vec<_>>(),
            b.iter().map(key).collect::<Vec<_>>()
        );
        let mut sorted = a.iter().map(key).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(sorted, a.iter().map(key).collect::<Vec<_>>());
    }

    #[test]
    fn json_output_is_escaped_and_shaped() {
        let v = vec![Violation {
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            rule: "unwrap-panic",
            message: "say \"no\" to\nbackslash \\ panics".into(),
            fix: "fix it",
        }];
        let json = render_json(&v);
        assert!(json.contains("\"schema\":\"rbcast-audit/1\""));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\\\\"));
        assert!(json.contains("\"clean\":false"));
        let empty = render_json(&[]);
        assert!(empty.contains("\"clean\":true"));
        assert!(empty.contains("\"findings\":[\n]"));
    }

    #[test]
    fn baseline_roundtrip_filters_known_findings() {
        let root = fixtures().join("unwrap-panic");
        let v = run_audit(&root, None).expect("fixture readable");
        assert!(!v.is_empty());
        let tmp = std::env::temp_dir().join("rbcast_audit_baseline_test.json");
        write_baseline(&tmp, &v).expect("baseline writable");
        let base = load_baseline(&tmp).expect("baseline readable");
        assert_eq!(base.len(), v.len());
        let left = apply_baseline(v, &base);
        assert!(left.is_empty(), "baselined findings must be filtered");
        let _ = fs::remove_file(&tmp);
    }
}
