//! `cargo xtask` — workspace automation.
//!
//! Subcommands:
//!
//! * `audit` — run the invariant audit over the workspace.
//!   * `--root DIR` audit a different tree (used by the self-test)
//!   * `--rule ID` run a single rule (meta ids `stale-allow` and
//!     `unknown-allow` are selectable too)
//!   * `--list` print the rule inventory
//!   * `--format json` emit the SARIF-lite report on stdout
//!   * `--baseline FILE` drop findings recorded in FILE
//!   * `--write-baseline FILE` record current findings and exit 0
//!   * `--self-test` check every rule fires on its fixture
//!
//! Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage/IO
//! error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::rules::{
    all_rules, Violation, STALE_ALLOW, STALE_ALLOW_FIX, UNKNOWN_ALLOW, UNKNOWN_ALLOW_FIX,
};
use xtask::{
    apply_baseline, load_baseline, render_json, run_audit, self_test, workspace_root,
    write_baseline,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask audit [--root DIR] [--rule ID] [--list] \
         [--format json] [--baseline FILE] [--write-baseline FILE] [--self-test]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        _ => usage(),
    }
}

fn print_list() {
    println!("{:<26} {:<12} summary", "rule", "allow-name");
    for rule in all_rules() {
        println!("{:<26} {:<12} {}", rule.id, rule.allow_name, rule.summary);
    }
    println!("{STALE_ALLOW:<26} {:<12} {STALE_ALLOW_FIX}", "-");
    println!("{UNKNOWN_ALLOW:<26} {:<12} {UNKNOWN_ALLOW_FIX}", "-");
}

fn print_text(violations: &[Violation]) {
    for v in violations {
        println!(
            "{}:{}:{}: [{}] {}",
            v.path, v.line, v.col, v.rule, v.message
        );
        println!("    fix: {}", v.fix);
    }
    if violations.is_empty() {
        println!("audit: clean");
    } else {
        println!("audit: {} finding(s)", violations.len());
    }
}

fn run_fixture_self_test() -> ExitCode {
    let fixtures = workspace_root().join("crates/xtask/fixtures");
    match self_test(&fixtures) {
        Ok(reports) => {
            let mut ok = true;
            for r in &reports {
                println!(
                    "{} {:<26} {}",
                    if r.ok { "ok  " } else { "FAIL" },
                    r.name,
                    r.detail
                );
                ok &= r.ok;
            }
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("audit self-test error: {e}");
            ExitCode::from(2)
        }
    }
}

fn audit(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    let mut format_json = false;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline_to: Option<PathBuf> = None;
    let mut list = false;
    let mut fixture_self_test = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--rule" => match it.next() {
                Some(v) => rule = Some(v.clone()),
                None => return usage(),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                _ => return usage(),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--write-baseline" => match it.next() {
                Some(v) => write_baseline_to = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--list" => list = true,
            "--self-test" => fixture_self_test = true,
            _ => return usage(),
        }
    }

    if list {
        print_list();
        return ExitCode::SUCCESS;
    }
    if fixture_self_test {
        return run_fixture_self_test();
    }

    let root = root.unwrap_or_else(workspace_root);
    let mut violations = match run_audit(&root, rule.as_deref()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("audit error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline_to {
        if let Err(e) = write_baseline(&path, &violations) {
            eprintln!("audit error: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "audit: wrote baseline with {} finding(s) to {}",
            violations.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = baseline {
        match load_baseline(&path) {
            Ok(base) => violations = apply_baseline(violations, &base),
            Err(e) => {
                eprintln!("audit error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if format_json {
        print!("{}", render_json(&violations));
    } else {
        print_text(&violations);
    }

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
