//! `cargo xtask` — workspace task runner.
//!
//! Subcommands:
//!
//! * `audit` — run the static-analysis gates over the workspace
//!   (`--root PATH` to audit another tree, `--rule ID` for one rule,
//!   `--list` to list rules, `--self-test` to prove each rule fires on
//!   its fixture). Exits non-zero on any finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::rules::all_rules;
use xtask::{run_audit, self_test, workspace_root};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => audit(&args[1..]),
        Some(other) => {
            eprintln!("unknown subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask audit [--root PATH] [--rule ID] [--list] [--self-test]");
}

fn audit(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    let mut list = false;
    let mut selftest = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--rule" => match it.next() {
                Some(r) => rule = Some(r.clone()),
                None => {
                    eprintln!("--rule requires a rule id");
                    return ExitCode::from(2);
                }
            },
            "--list" => list = true,
            "--self-test" => selftest = true,
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }

    if list {
        for r in all_rules() {
            println!("{:<20} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if selftest {
        let fixtures = workspace_root().join("crates/xtask/fixtures");
        return match self_test(&fixtures) {
            Ok(reports) => {
                let mut failed = false;
                for r in &reports {
                    let mark = if r.ok { "ok " } else { "FAIL" };
                    println!("{mark} fixture {:<20} {}", r.name, r.detail);
                    failed |= !r.ok;
                }
                if failed {
                    ExitCode::FAILURE
                } else {
                    println!("audit self-test: all {} fixtures behaved", reports.len());
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("audit self-test error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let root = root.unwrap_or_else(workspace_root);
    match run_audit(&root, rule.as_deref()) {
        Ok(violations) if violations.is_empty() => {
            println!(
                "audit: clean ({} rules)",
                rule.as_ref().map_or(all_rules().len(), |_| 1)
            );
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
            }
            println!("audit: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("audit error: {e}");
            ExitCode::from(2)
        }
    }
}
