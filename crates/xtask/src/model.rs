//! Structural source model on top of the token stream.
//!
//! [`FileModel`] analyses one file in a single pass over the lexer's
//! tokens and gives the rules everything the old per-line view could
//! not express:
//!
//! * a *code view* (comments filtered out, string/char literal contents
//!   blanked inside the token text) that token queries run over, so a
//!   construct split across lines is still one match;
//! * brace-matched block nesting with `#[cfg(test)]` / `#[test]` region
//!   tracking (rules apply to shipped code, not tests);
//! * loop-depth per token (`for`/`while`/`loop` bodies), which powers
//!   the hot-path allocation rule;
//! * `fn` item spans, which power function-scoped dataflow rules such
//!   as `checked-threshold-arith`;
//! * the `audit:allow(...)` suppression sites, with the *strict*
//!   attachment discipline: a trailing comment covers its own line,
//!   while a standalone comment line attaches to the next line only
//!   when its content is nothing but the annotation (plus an optional
//!   rationale introduced by `:` or `—`). Prose that merely mentions
//!   an annotation attaches to nothing.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// Per-code-token structural facts.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenMeta {
    /// Inside a `#[cfg(test)]` / `#[test]` item (attribute included).
    pub in_test: bool,
    /// Number of enclosing `for`/`while`/`loop` bodies.
    pub loop_depth: u16,
    /// Index into [`FileModel::fns`] of the nearest enclosing function.
    pub fn_idx: Option<usize>,
}

/// Span of one `fn` item, as indices into the *code* token view.
#[derive(Debug, Clone, Copy)]
pub struct FnSpan {
    /// Code index of the `fn` keyword.
    pub kw: usize,
    /// Code index of the body's closing `}` (inclusive end of item).
    pub close: usize,
    /// True when the whole item sits inside a test region.
    pub in_test: bool,
}

/// One `audit:allow(...)` annotation site.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// 1-based line of the annotation comment.
    pub line: usize,
    /// Line whose findings the site suppresses (`None`: malformed, no
    /// attachment).
    pub covers: Option<usize>,
    /// Allow-names listed inside the parentheses.
    pub names: Vec<String>,
    /// Why the site failed to attach, when malformed.
    pub malformed: Option<String>,
}

/// A fully analysed source file.
#[derive(Debug)]
pub struct FileModel {
    /// Path relative to the audit root.
    pub rel: PathBuf,
    /// Every token, trivia included, in source order.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-trivia tokens ("code view").
    pub code: Vec<usize>,
    /// Structural facts, parallel to `code`.
    pub meta: Vec<TokenMeta>,
    /// All `fn` item spans, in source order.
    pub fns: Vec<FnSpan>,
    /// All suppression annotation sites, in source order.
    pub allows: Vec<AllowSite>,
}

impl FileModel {
    /// Lex and analyse `text` as the file `rel`.
    #[must_use]
    pub fn parse(rel: &Path, text: &str) -> Self {
        let tokens = lex(text);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].kind.is_trivia())
            .collect();
        let in_test = test_mask(&tokens, &code);
        let (meta, fns) = structure(&tokens, &code, &in_test);
        let allows = allow_sites(&tokens);
        FileModel {
            rel: rel.to_path_buf(),
            tokens,
            code,
            meta,
            fns,
            allows,
        }
    }

    /// Number of code tokens.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// The `i`-th code token.
    #[must_use]
    pub fn ct(&self, i: usize) -> &Token {
        &self.tokens[self.code[i]]
    }

    /// Search text of the `i`-th code token: literal contents are
    /// blanked so a banned name inside a string cannot match.
    #[must_use]
    pub fn code_text(&self, i: usize) -> &str {
        let t = self.ct(i);
        if t.kind.is_textual_literal() {
            ""
        } else {
            &t.text
        }
    }

    /// Does the code token at `i` start the given `(text, …)` sequence?
    /// Each pattern entry matches one code token's full text.
    #[must_use]
    pub fn seq_at(&self, i: usize, pats: &[&str]) -> bool {
        pats.len() <= self.code.len().saturating_sub(i)
            && pats
                .iter()
                .enumerate()
                .all(|(k, p)| self.code_text(i + k) == *p)
    }

    /// All code indices where `pats` matches (non-test tokens only when
    /// `skip_tests`).
    #[must_use]
    pub fn find_seq(&self, pats: &[&str], skip_tests: bool) -> Vec<usize> {
        (0..self.code.len())
            .filter(|&i| !(skip_tests && self.meta[i].in_test) && self.seq_at(i, pats))
            .collect()
    }

    /// `(line, col)` of the `i`-th code token.
    #[must_use]
    pub fn at(&self, i: usize) -> (usize, usize) {
        let t = self.ct(i);
        (t.line, t.col)
    }
}

/// Mark code tokens covered by `#[cfg(test)]` / `#[test]` items,
/// attribute included — the token-level port of the old line mask.
fn test_mask(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let n = code.len();
    let text = |i: usize| -> &str { &tokens[code[i]].text };
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        if !(text(i) == "#" && i + 1 < n && text(i + 1) == "[") {
            i += 1;
            continue;
        }
        // Scan the attribute group to its matching `]`.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut is_test = false;
        let mut negated = false;
        while j < n {
            match text(j) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "not" => negated = true,
                "test" => is_test = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test || negated {
            i = j + 1;
            continue;
        }
        // Mark the attribute, any further attributes, then the item:
        // through the brace-balanced body or to the terminating `;`.
        for m in mask.iter_mut().take(j + 1).skip(i) {
            *m = true;
        }
        let mut k = j + 1;
        let mut braces = 0i32;
        let mut entered = false;
        while k < n {
            mask[k] = true;
            match text(k) {
                "{" => {
                    braces += 1;
                    entered = true;
                }
                "}" => {
                    braces -= 1;
                    if entered && braces <= 0 {
                        break;
                    }
                }
                ";" if !entered && braces == 0 => break,
                _ => {}
            }
            k += 1;
        }
        i = k + 1;
    }
    mask
}

/// One entry on the block stack of the structural pass.
#[derive(Debug, Clone, Copy)]
struct Block {
    is_loop: bool,
    fn_idx: Option<usize>,
}

/// Compute per-token structure (loop depth, enclosing fn) and fn spans.
fn structure(tokens: &[Token], code: &[usize], in_test: &[bool]) -> (Vec<TokenMeta>, Vec<FnSpan>) {
    let n = code.len();
    let text = |i: usize| -> &str { &tokens[code[i]].text };
    let kind = |i: usize| tokens[code[i]].kind;

    let mut meta = vec![TokenMeta::default(); n];
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut stack: Vec<Block> = Vec::new();
    // Open-fn bookkeeping: fns index -> filled `close` when popped.
    let mut loop_pending = false;
    let mut loop_delims = 0i32; // paren/bracket depth inside a loop header
    let mut fn_pending: Option<usize> = None; // code idx of `fn` keyword
    let mut impl_header = false;

    let mut loop_depth: u16 = 0;

    for i in 0..n {
        let t = text(i);
        let is_kw = kind(i) == TokenKind::Ident;

        // Resolve structural effects first for `{`, last for `}`.
        if t == "{" {
            let opens_loop = loop_pending && loop_delims == 0;
            let opens_fn = fn_pending.take().map(|kw| {
                fns.push(FnSpan {
                    kw,
                    close: usize::MAX,
                    in_test: in_test[kw],
                });
                fns.len() - 1
            });
            if opens_loop {
                loop_pending = false;
                loop_depth += 1;
            }
            stack.push(Block {
                is_loop: opens_loop,
                fn_idx: opens_fn.or_else(|| stack.last().and_then(|b| b.fn_idx)),
            });
            impl_header = false;
        }

        meta[i] = TokenMeta {
            in_test: in_test[i],
            loop_depth,
            fn_idx: stack.last().and_then(|b| b.fn_idx),
        };

        match t {
            "}" => {
                if let Some(b) = stack.pop() {
                    if b.is_loop {
                        loop_depth = loop_depth.saturating_sub(1);
                    }
                    if let Some(fi) = b.fn_idx {
                        // Closing the fn's own body (not an inner block).
                        let inner_still_open = stack.last().and_then(|s| s.fn_idx) == Some(fi);
                        if !inner_still_open && fns[fi].close == usize::MAX {
                            fns[fi].close = i;
                        }
                    }
                }
            }
            "(" | "[" if loop_pending => loop_delims += 1,
            ")" | "]" if loop_pending => loop_delims -= 1,
            ";" => {
                // A `;` before any body cancels a pending fn (trait decl
                // or `fn()` pointer type) and closes an impl header.
                if loop_delims == 0 {
                    fn_pending = None;
                }
                impl_header = false;
            }
            "impl" if is_kw => impl_header = true,
            "fn" if is_kw => fn_pending = Some(i),
            "for" | "while" | "loop" if is_kw => {
                // `impl Trait for Type` and HRTB `for<'a>` are not loops.
                let hrtb = t == "for" && i + 1 < n && text(i + 1) == "<";
                if !(impl_header || hrtb) {
                    loop_pending = true;
                    loop_delims = 0;
                }
            }
            _ => {}
        }
    }
    // Unterminated fns (truncated file): close at the last token.
    for f in &mut fns {
        if f.close == usize::MAX {
            f.close = n.saturating_sub(1);
        }
    }
    (meta, fns)
}

const MARKER: &str = "audit:allow(";

/// Extract suppression sites from the comment tokens.
fn allow_sites(tokens: &[Token]) -> Vec<AllowSite> {
    // First token on each line (trivia included) — a comment that is not
    // first on its line is a trailing comment.
    let mut first_on_line: Vec<(usize, usize)> = Vec::new(); // (line, tok idx)
    for (i, t) in tokens.iter().enumerate() {
        if first_on_line.last().map(|&(l, _)| l) != Some(t.line) {
            first_on_line.push((t.line, i));
        }
    }
    let is_first = |i: usize, line: usize| {
        first_on_line
            .binary_search_by_key(&line, |&(l, _)| l)
            .is_ok_and(|slot| first_on_line[slot].1 == i)
    };

    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment || !t.text.contains(MARKER) {
            continue;
        }
        if is_first(i, t.line) {
            // Standalone comment line: strict attachment discipline.
            let content = t.text.trim_start_matches('/').trim();
            if let Some(rest) = content.strip_prefix(MARKER) {
                match rest.find(')') {
                    Some(close) => {
                        let names = parse_names(&rest[..close]);
                        let tail = rest[close + 1..].trim_start();
                        if tail.is_empty() || tail.starts_with(':') || tail.starts_with('—') {
                            out.push(AllowSite {
                                line: t.line,
                                covers: Some(t.line + 1),
                                names,
                                malformed: None,
                            });
                        } else {
                            out.push(AllowSite {
                                line: t.line,
                                covers: None,
                                names,
                                malformed: Some(
                                    "rationale after the annotation must be introduced by \
                                     `:` or `—` for the comment to attach to the next line"
                                        .to_string(),
                                ),
                            });
                        }
                    }
                    None => out.push(AllowSite {
                        line: t.line,
                        covers: None,
                        names: Vec::new(),
                        malformed: Some("unclosed `audit:allow(`".to_string()),
                    }),
                }
            }
            // Prose that mentions the marker mid-comment attaches to
            // nothing: the finding it used to mask will surface.
        } else {
            // Trailing comment: covers its own line; the annotation may
            // sit anywhere in the comment text.
            let mut rest = t.text.as_str();
            while let Some(pos) = rest.find(MARKER) {
                let after = &rest[pos + MARKER.len()..];
                match after.find(')') {
                    Some(close) => {
                        out.push(AllowSite {
                            line: t.line,
                            covers: Some(t.line),
                            names: parse_names(&after[..close]),
                            malformed: None,
                        });
                        rest = &after[close + 1..];
                    }
                    None => {
                        out.push(AllowSite {
                            line: t.line,
                            covers: None,
                            names: Vec::new(),
                            malformed: Some("unclosed `audit:allow(`".to_string()),
                        });
                        break;
                    }
                }
            }
        }
    }
    out
}

fn parse_names(inside: &str) -> Vec<String> {
    inside
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Reconstruct the legacy "blanked" view of `text` from the token
/// stream: comments and literal contents become spaces (newlines kept),
/// everything else stays byte-identical. Rendering matches the legacy
/// [`crate::source::blank_comments_and_strings`] exactly on input both
/// models classify the same way, which is what the differential
/// self-test exploits.
#[must_use]
pub fn blanked_view(text: &str, tokens: &[Token]) -> String {
    let mut chars: Vec<char> = text.chars().collect();
    for t in tokens {
        if t.kind.is_trivia() {
            for c in &mut chars[t.start..t.end] {
                if *c != '\n' {
                    *c = ' ';
                }
            }
        } else if t.kind.is_textual_literal() {
            let delim = match t.kind {
                TokenKind::Char | TokenKind::Byte => '\'',
                _ => '"',
            };
            blank_literal(&mut chars[t.start..t.end], delim);
        }
    }
    chars.into_iter().collect()
}

/// Blank one literal token in place, legacy-compatibly: keep a leading
/// `b` prefix, the opening and closing delimiter, blank raw-string
/// hashes and all interior chars (newlines preserved).
fn blank_literal(span: &mut [char], delim: char) {
    let open = match span.iter().position(|&c| c == delim) {
        Some(o) => o,
        None => return,
    };
    let close = span.iter().rposition(|&c| c == delim).unwrap_or(open);
    for (i, c) in span.iter_mut().enumerate() {
        let keep = i == open
            || (i == close && close > open)
            || (i < open && *c == 'b') // byte prefix stays; `r`/`#` blank
            || *c == '\n';
        if !keep {
            *c = ' ';
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn model(src: &str) -> FileModel {
        FileModel::parse(Path::new("crates/sim/src/x.rs"), src)
    }

    #[test]
    fn multi_line_sequence_matches() {
        let m = model("let t =\n    Instant::\n    now();\n");
        let hits = m.find_seq(&["Instant", "::", "now"], true);
        assert_eq!(hits.len(), 1);
        assert_eq!(m.at(hits[0]).0, 2); // reported at the Instant token
    }

    #[test]
    fn literal_contents_do_not_match() {
        let m = model("let s = \"Instant::now()\";\nlet r = r#\"HashMap\"#;\n");
        assert!(m.find_seq(&["Instant", "::", "now"], true).is_empty());
        assert!(m.find_seq(&["HashMap"], true).is_empty());
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let m = model("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"x\") }\n}\nfn after() { }\n");
        let panics = m.find_seq(&["panic", "!"], true);
        assert!(panics.is_empty(), "test-mod panic must be masked");
        let unmasked = m.find_seq(&["panic", "!"], false);
        assert_eq!(unmasked.len(), 1);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let m = model("#[cfg(not(test))]\nfn live() { panic!(\"x\") }\n");
        assert_eq!(m.find_seq(&["panic", "!"], true).len(), 1);
    }

    #[test]
    fn braceless_cfg_test_item_is_masked() {
        let m = model("#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n");
        assert!(m.find_seq(&["HashMap"], true).is_empty());
    }

    #[test]
    fn loop_depth_tracks_for_while_loop() {
        let m = model(
            "fn f(v: &[u32]) {\n\
             let a = v.to_vec();\n\
             for x in v {\n    let b = v.to_vec();\n    while *x > 0 {\n        let c = v.to_vec();\n    }\n}\n}\n",
        );
        let sites = m.find_seq(&[".", "to_vec"], true);
        let depths: Vec<u16> = sites.iter().map(|&i| m.meta[i].loop_depth).collect();
        assert_eq!(depths, vec![0, 1, 2]);
    }

    #[test]
    fn impl_for_and_hrtb_are_not_loops() {
        let m = model(
            "impl Clone for Foo {\n    fn clone(&self) -> Foo { Foo }\n}\n\
             fn g<T: for<'a> Fn(&'a u8)>(t: T) { t(&1); }\n",
        );
        assert!(m.meta.iter().all(|mt| mt.loop_depth == 0));
    }

    #[test]
    fn closure_brace_in_loop_header_does_not_eat_the_body() {
        let m = model("fn f(v: Vec<u32>) {\nfor x in v.iter().map(|y| { y + 1 }) {\n    let z = format!(\"{x}\");\n}\n}\n");
        let fmt = m.find_seq(&["format", "!"], true);
        assert_eq!(fmt.len(), 1);
        assert_eq!(m.meta[fmt[0]].loop_depth, 1);
    }

    #[test]
    fn fn_spans_enclose_their_tokens() {
        let m = model("fn a() { let x = 1; }\nfn b() { let y = 2 * 3; }\n");
        assert_eq!(m.fns.len(), 2);
        let mult = m.find_seq(&["*"], true)[0];
        let fi = m.meta[mult].fn_idx.expect("inside fn b");
        assert_eq!(m.code_text(m.fns[fi].kw + 1), "b");
    }

    #[test]
    fn trailing_allow_covers_its_line() {
        let m = model("let t = now(); // audit:allow(wall-clock) measured once at startup\n");
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].covers, Some(1));
        assert_eq!(m.allows[0].names, vec!["wall-clock"]);
    }

    #[test]
    fn strict_standalone_allow_attaches_to_next_line() {
        for src in [
            "// audit:allow(unordered, panic)\nlet m = 1;\n",
            "// audit:allow(unordered, panic): scratch map, drained sorted\nlet m = 1;\n",
            "// audit:allow(unordered, panic) — scratch map, drained sorted\nlet m = 1;\n",
        ] {
            let m = model(src);
            assert_eq!(m.allows.len(), 1, "{src}");
            assert_eq!(m.allows[0].covers, Some(2), "{src}");
            assert_eq!(m.allows[0].names, vec!["unordered", "panic"], "{src}");
        }
    }

    #[test]
    fn prose_mention_does_not_attach() {
        // The old model attached ANY annotation in the preceding comment;
        // prose mentioning one must no longer suppress anything.
        let m = model("// helper; see audit:allow(panic) in engine.rs\npanic!(\"x\");\n");
        assert!(m.allows.is_empty());
    }

    #[test]
    fn unintroduced_rationale_is_malformed_not_attached() {
        let m = model("// audit:allow(panic) bare prose rationale\npanic!(\"x\");\n");
        assert_eq!(m.allows.len(), 1);
        assert_eq!(m.allows[0].covers, None);
        assert!(m.allows[0].malformed.is_some());
        assert_eq!(m.allows[0].names, vec!["panic"]);
    }

    #[test]
    fn annotation_inside_string_is_not_a_site() {
        let m = model("let s = \"// audit:allow(panic)\";\npanic!(\"x\");\n");
        assert!(m.allows.is_empty());
    }
}
