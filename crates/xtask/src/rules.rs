//! The audit rules.
//!
//! Each rule names the repo-specific invariant it protects, the path
//! scope it applies to (relative to the audit root), and a line-level
//! check that runs on blanked source (see [`crate::source`]). Every rule
//! has a fixture tree under `crates/xtask/fixtures/<rule-id>/` proving
//! it fires, exercised both by `cargo xtask audit --self-test` and by
//! this crate's unit tests.

use std::path::Path;

use crate::source::SourceFile;

/// Library crate source roots (relative to the audit root). `src` is the
/// root `rbcast` facade crate.
const LIB_SRC: &[&str] = &[
    "crates/grid/src",
    "crates/flow/src",
    "crates/construct/src",
    "crates/sim/src",
    "crates/adversary/src",
    "crates/protocols/src",
    "crates/core/src",
    "src",
];

/// Crates whose round/delivery order feeds the deterministic trace.
const ORDER_SENSITIVE_SRC: &[&str] = &["crates/sim/src", "crates/protocols/src"];

/// Crates holding the L2/L∞ grid geometry.
const GEOMETRY_SRC: &[&str] = &["crates/grid/src", "crates/construct/src"];

/// `LIB_SRC` plus the bench harness (timing must be annotated there).
const CLOCK_SRC: &[&str] = &[
    "crates/grid/src",
    "crates/flow/src",
    "crates/construct/src",
    "crates/sim/src",
    "crates/adversary/src",
    "crates/protocols/src",
    "crates/core/src",
    "crates/bench/src",
    "src",
];

/// A single audit finding.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path relative to the audit root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `unordered-iteration`).
    pub rule: &'static str,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

/// A static-analysis rule: scope + per-file check.
pub struct Rule {
    /// Stable identifier, also the `audit:allow(...)` name where applicable.
    pub id: &'static str,
    /// One-line description shown by `cargo xtask audit --list`.
    pub summary: &'static str,
    /// Path prefixes (relative to the audit root) the rule applies to.
    pub scopes: &'static [&'static str],
    /// Per-file check returning `(line, message)` findings.
    pub check: fn(&SourceFile) -> Vec<(usize, String)>,
}

impl Rule {
    /// Whether `rel` falls under one of the rule's scope prefixes.
    pub fn applies_to(&self, rel: &Path) -> bool {
        self.scopes.iter().any(|s| rel.starts_with(s))
    }
}

/// All audit rules, in reporting order.
pub fn all_rules() -> &'static [Rule] {
    &[
        Rule {
            id: "unordered-iteration",
            summary: "sim/protocols hot paths must not iterate HashMap/HashSet \
                      (use BTreeMap/BTreeSet or sorted drains)",
            scopes: ORDER_SENSITIVE_SRC,
            check: check_unordered,
        },
        Rule {
            id: "float-eq",
            summary: "grid/construct geometry must not compare floats with == or != \
                      (use explicit tolerances or integer coordinates)",
            scopes: GEOMETRY_SRC,
            check: check_float_eq,
        },
        Rule {
            id: "unwrap-panic",
            summary: "library crates must not .unwrap() or panic! outside tests \
                      (return Result or use expect with an invariant-naming message)",
            scopes: LIB_SRC,
            check: check_unwrap_panic,
        },
        Rule {
            id: "nondeterminism",
            summary: "no thread_rng / entropy seeding / wall-clock reads outside \
                      seeded entry points (runs must replay from a u64 seed)",
            scopes: CLOCK_SRC,
            check: check_nondeterminism,
        },
        Rule {
            id: "obs-wallclock",
            summary: "raw wall-clock reads (Instant::now / SystemTime) are confined \
                      to rbcast-core's obs module (time through obs::span or \
                      obs::Stopwatch so measurement stays out of hashed state)",
            scopes: CLOCK_SRC,
            check: check_obs_wallclock,
        },
        Rule {
            id: "raw-thread-spawn",
            summary: "raw std::thread spawn/scope is confined to rbcast-core's engine \
                      module (all parallelism must flow through engine::run_indexed \
                      so results stay input-ordered and deterministic)",
            scopes: CLOCK_SRC,
            check: check_raw_thread_spawn,
        },
        Rule {
            id: "catch-unwind",
            summary: "catch_unwind is confined to rbcast-core's supervisor module \
                      (panic isolation must flow through the supervisor so failures \
                      are classified, retried, and journalled uniformly)",
            scopes: CLOCK_SRC,
            check: check_catch_unwind,
        },
        Rule {
            id: "adhoc-neighborhood",
            summary: "torus.neighborhood scans are confined to the grid arena module \
                      (hot paths must read the shared CSR NeighborTable; annotate \
                      audit:allow(adhoc-neighborhood) at cold one-shot sites)",
            scopes: LIB_SRC,
            check: check_adhoc_neighborhood,
        },
        Rule {
            id: "lint-header",
            summary: "every library crate root must carry #![forbid(unsafe_code)] \
                      and #![warn(missing_docs)]",
            scopes: LIB_SRC,
            check: check_lint_header,
        },
    ]
}

/// Look up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    all_rules().iter().find(|r| r.id == id)
}

/// True when `code` contains `needle` as a standalone token, i.e. not
/// embedded in a longer identifier like `MyHashMapLike`.
fn has_token(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + needle.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

fn check_unordered(file: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test || line.allows("unordered") {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if has_token(&line.code, ty) {
                out.push((
                    line.number,
                    format!(
                        "{ty} in an order-sensitive crate: iteration order is \
                         nondeterministic and would break same-seed trace replay; \
                         use BTree{} or drain through a sorted Vec",
                        &ty[4..]
                    ),
                ));
            }
        }
    }
    out
}

/// A float hint: a float literal (`1.0`, `2.`) or an `f64`/`f32` token.
fn has_float_hint(code: &str) -> bool {
    if has_token(code, "f64") || has_token(code, "f32") {
        return true;
    }
    let chars: Vec<char> = code.chars().collect();
    for i in 0..chars.len() {
        if chars[i] != '.' || i == 0 || !chars[i - 1].is_ascii_digit() {
            continue;
        }
        // Walk back over the digit run: if an identifier character
        // precedes it, the digits belong to a name (`L2.within`,
        // `d1.len()`), not a numeric literal.
        let mut j = i;
        while j > 0 && chars[j - 1].is_ascii_digit() {
            j -= 1;
        }
        if j > 0 && (chars[j - 1].is_alphanumeric() || chars[j - 1] == '_') {
            continue;
        }
        // `1.0`, `1.`, `1.5e3` are floats; `0..n` is a range and
        // `1.max(2)`-style method syntax is not float either.
        match chars.get(i + 1) {
            Some(c) if c.is_ascii_digit() => return true,
            Some(c) if *c == '.' || c.is_alphabetic() || *c == '_' => continue,
            _ => return true,
        }
    }
    false
}

fn check_float_eq(file: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test || line.allows("float-eq") {
            continue;
        }
        let code = &line.code;
        let has_cmp = code.contains("==")
            || code.contains("!=")
            || code.contains("assert_eq!")
            || code.contains("assert_ne!");
        if has_cmp && has_float_hint(code) {
            out.push((
                line.number,
                "floating-point equality in geometry code: exact == / != on \
                 f64 silently misclassifies neighbour distances; compare with \
                 an explicit tolerance or stay in integer grid coordinates"
                    .to_string(),
            ));
        }
    }
    out
}

fn check_unwrap_panic(file: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test || line.allows("panic") {
            continue;
        }
        if line.code.contains(".unwrap()") {
            out.push((
                line.number,
                ".unwrap() in library code: return a Result or use \
                 .expect(\"<invariant that guarantees this>\") so failures \
                 name the broken invariant"
                    .to_string(),
            ));
        }
        if has_token(&line.code, "panic!") {
            out.push((
                line.number,
                "panic! in library code: return an error, or annotate with \
                 audit:allow(panic) citing the invariant that makes this \
                 unreachable"
                    .to_string(),
            ));
        }
    }
    out
}

fn check_nondeterminism(file: &SourceFile) -> Vec<(usize, String)> {
    const BANNED: &[(&str, &str)] = &[
        ("thread_rng", "OS-entropy RNG breaks same-seed replay"),
        ("from_entropy", "entropy seeding breaks same-seed replay"),
        (
            "SystemTime::now",
            "wall-clock reads make runs irreproducible",
        ),
        ("Instant::now", "wall-clock reads make runs irreproducible"),
        (
            "rand::random",
            "implicit thread-local RNG breaks same-seed replay",
        ),
    ];
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test || line.allows("wall-clock") {
            continue;
        }
        for (tok, why) in BANNED {
            if line.code.contains(tok) {
                out.push((
                    line.number,
                    format!(
                        "{tok}: {why}; every run must derive from an explicit \
                         u64 seed (StdRng::seed_from_u64) or be annotated \
                         audit:allow(wall-clock) at a measurement-only site"
                    ),
                ));
            }
        }
    }
    out
}

/// The one module allowed to read the wall clock: the observability
/// layer whose `span`/`Stopwatch` primitives every other crate is
/// expected to time through.
const OBS_EXEMPT: &str = "crates/core/src/obs.rs";

fn check_obs_wallclock(file: &SourceFile) -> Vec<(usize, String)> {
    if file.rel == Path::new(OBS_EXEMPT) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test || line.allows("obs-wallclock") {
            continue;
        }
        if line.code.contains("Instant::now") || has_token(&line.code, "SystemTime") {
            out.push((
                line.number,
                "raw wall-clock read outside rbcast-core::obs: ad-hoc timing \
                 scatters Instant through code that must stay replayable; \
                 time through obs::span(\"area/op\") or obs::Stopwatch (or \
                 annotate audit:allow(obs-wallclock) explaining why the \
                 measurement cannot route through obs)"
                    .to_string(),
            ));
        }
    }
    out
}

/// The one module allowed to touch `std::thread` directly: the
/// deterministic sweep executor every other crate is expected to use.
const THREAD_EXEMPT: &str = "crates/core/src/engine.rs";

fn check_raw_thread_spawn(file: &SourceFile) -> Vec<(usize, String)> {
    if file.rel == Path::new(THREAD_EXEMPT) {
        return Vec::new();
    }
    const BANNED: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test || line.allows("raw-thread") {
            continue;
        }
        for tok in BANNED {
            if line.code.contains(tok) {
                out.push((
                    line.number,
                    format!(
                        "{tok} outside rbcast-core::engine: ad-hoc threads do not \
                         preserve input-ordered result collection; fan work out \
                         through engine::run_indexed (or annotate \
                         audit:allow(raw-thread) with a determinism argument)"
                    ),
                ));
            }
        }
    }
    out
}

/// The one module allowed to call `catch_unwind`: the supervised
/// execution layer every other crate is expected to route fallible
/// fan-out through.
const UNWIND_EXEMPT: &str = "crates/core/src/supervisor.rs";

fn check_catch_unwind(file: &SourceFile) -> Vec<(usize, String)> {
    if file.rel == Path::new(UNWIND_EXEMPT) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test || line.allows("catch-unwind") {
            continue;
        }
        if has_token(&line.code, "catch_unwind") {
            out.push((
                line.number,
                "catch_unwind outside rbcast-core::supervisor: swallowing a \
                 panic in place hides the failure from the quarantine report \
                 and the checkpoint journal; run the task through \
                 supervisor::supervise / run_experiments_supervised instead \
                 (or annotate audit:allow(catch-unwind) with an isolation \
                 argument)"
                    .to_string(),
            ));
        }
    }
    out
}

/// The one module allowed to scan `torus.neighborhood` directly: the CSR
/// arena builder whose tables every other crate is expected to read.
const NEIGHBORHOOD_EXEMPT: &str = "crates/grid/src/arena.rs";

fn check_adhoc_neighborhood(file: &SourceFile) -> Vec<(usize, String)> {
    if file.rel == Path::new(NEIGHBORHOOD_EXEMPT) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for line in &file.lines {
        if line.in_test || line.allows("adhoc-neighborhood") {
            continue;
        }
        if line.code.contains(".neighborhood(") {
            out.push((
                line.number,
                "ad-hoc torus.neighborhood scan outside the arena module: \
                 it re-derives metric offsets on every call; read the shared \
                 CSR NeighborTable instead, or annotate \
                 audit:allow(adhoc-neighborhood) at a cold one-shot site"
                    .to_string(),
            ));
        }
    }
    out
}

fn check_lint_header(file: &SourceFile) -> Vec<(usize, String)> {
    if file.rel.file_name().and_then(|n| n.to_str()) != Some("lib.rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for required in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
        let present = file.lines.iter().any(|l| l.code.contains(required));
        if !present {
            out.push((
                1,
                format!("crate root is missing the `{required}` lint header"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_text(Path::new(rel), src)
    }

    #[test]
    fn token_matching_ignores_longer_identifiers() {
        assert!(has_token("let m: HashMap<u8, u8>;", "HashMap"));
        assert!(!has_token("struct MyHashMapLike;", "HashMap"));
        assert!(!has_token("let hash_map = 1;", "HashMap"));
    }

    #[test]
    fn unordered_fires_on_hashmap_and_respects_allow() {
        let f = file(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap;\n\
             let a: HashMap<u8, u8> = HashMap::new(); // audit:allow(unordered)\n",
        );
        let v = check_unordered(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, 1);
    }

    #[test]
    fn unordered_skips_test_mods() {
        let f = file(
            "crates/sim/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n",
        );
        assert!(check_unordered(&f).is_empty());
    }

    #[test]
    fn float_eq_fires_on_literal_and_f64_comparisons() {
        let f = file(
            "crates/grid/src/x.rs",
            "if dist == 1.0 { }\nif (a as f64) != b { }\nif n == 3 { }\n",
        );
        let v = check_float_eq(&f);
        assert_eq!(v.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn float_eq_ignores_ranges_and_tuple_indices() {
        assert!(!has_float_hint("for i in 0..n { }"));
        assert!(!has_float_hint("let y = pair.0;"));
        assert!(has_float_hint("let y = 2.5;"));
        assert!(has_float_hint("let y = 2.;"));
    }

    #[test]
    fn float_eq_ignores_identifier_digits_and_method_calls() {
        assert!(!has_float_hint("b != a && Metric::L2.within(a, b, r)"));
        assert!(!has_float_hint("debug_assert_eq!(d1.len(), d2.len());"));
        assert!(has_float_hint("if x == 10.5 { }"));
    }

    #[test]
    fn unwrap_panic_fires_and_expect_is_allowed() {
        let f = file(
            "crates/flow/src/x.rs",
            "let a = x.unwrap();\nlet b = y.expect(\"invariant\");\npanic!(\"boom\");\n",
        );
        let v = check_unwrap_panic(&f);
        assert_eq!(v.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn nondeterminism_fires_and_annotation_silences() {
        let f = file(
            "crates/protocols/src/x.rs",
            "let r = rand::thread_rng();\n\
             let t = Instant::now(); // audit:allow(wall-clock)\n",
        );
        let v = check_nondeterminism(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, 1);
    }

    #[test]
    fn nondeterminism_ignores_strings_and_comments() {
        let f = file(
            "crates/sim/src/x.rs",
            "// thread_rng is banned here\nlet s = \"Instant::now\";\n",
        );
        assert!(check_nondeterminism(&f).is_empty());
    }

    #[test]
    fn obs_wallclock_fires_outside_obs_and_respects_allow() {
        let f = file(
            "crates/bench/src/perf.rs",
            "let t0 = std::time::Instant::now();\n\
             let t = SystemTime::now(); // audit:allow(obs-wallclock)\n\
             let sw = obs::Stopwatch::start();\n",
        );
        let v = check_obs_wallclock(&f);
        assert_eq!(v.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn obs_wallclock_exempts_the_obs_module() {
        let f = file(
            "crates/core/src/obs.rs",
            "start: Instant::now(),\nlet t = SystemTime::now();\n",
        );
        assert!(check_obs_wallclock(&f).is_empty());
    }

    #[test]
    fn obs_wallclock_skips_tests_and_longer_identifiers() {
        let f = file(
            "crates/sim/src/x.rs",
            "struct MySystemTimeLike;\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { let _ = std::time::Instant::now(); }\n\
             }\n",
        );
        assert!(check_obs_wallclock(&f).is_empty());
    }

    #[test]
    fn raw_thread_spawn_fires_outside_the_engine() {
        let f = file(
            "crates/sim/src/worker.rs",
            "let h = std::thread::spawn(|| 7);\n\
             std::thread::scope(|s| {}); // audit:allow(raw-thread)\n",
        );
        let v = check_raw_thread_spawn(&f);
        assert_eq!(v.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn raw_thread_spawn_exempts_the_engine_module() {
        let f = file(
            "crates/core/src/engine.rs",
            "std::thread::scope(|s| { s.spawn(|| {}); });\n",
        );
        assert!(check_raw_thread_spawn(&f).is_empty());
    }

    #[test]
    fn raw_thread_spawn_skips_test_mods() {
        let f = file(
            "crates/core/src/experiment.rs",
            "#[cfg(test)]\nmod tests {\n    let h = std::thread::spawn(|| 7);\n}\n",
        );
        assert!(check_raw_thread_spawn(&f).is_empty());
    }

    #[test]
    fn catch_unwind_fires_outside_the_supervisor() {
        let f = file(
            "crates/core/src/engine.rs",
            "let r = std::panic::catch_unwind(|| 7);\n\
             let s = panic::catch_unwind(f); // audit:allow(catch-unwind)\n",
        );
        let v = check_catch_unwind(&f);
        assert_eq!(v.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn catch_unwind_exempts_the_supervisor_module() {
        let f = file(
            "crates/core/src/supervisor.rs",
            "let r = std::panic::catch_unwind(AssertUnwindSafe(f));\n",
        );
        assert!(check_catch_unwind(&f).is_empty());
    }

    #[test]
    fn catch_unwind_skips_test_mods_and_longer_identifiers() {
        let f = file(
            "crates/sim/src/x.rs",
            "fn no_catch_unwind_here() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { let _ = std::panic::catch_unwind(|| 1); }\n\
             }\n",
        );
        assert!(check_catch_unwind(&f).is_empty());
    }

    #[test]
    fn adhoc_neighborhood_fires_outside_the_arena() {
        let f = file(
            "crates/core/src/scan.rs",
            "let d = torus.neighborhood(id, r, metric).count();\n\
             let e = torus.neighborhood(id, r, metric); // audit:allow(adhoc-neighborhood)\n",
        );
        let v = check_adhoc_neighborhood(&f);
        assert_eq!(v.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn adhoc_neighborhood_exempts_the_arena_module() {
        let f = file(
            "crates/grid/src/arena.rs",
            "let targets = torus.neighborhood(id, r, metric);\n",
        );
        assert!(check_adhoc_neighborhood(&f).is_empty());
    }

    #[test]
    fn adhoc_neighborhood_skips_tests_and_plain_identifiers() {
        let f = file(
            "crates/protocols/src/x.rs",
            "fn fits_single_neighborhood(r: u32) {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t(torus: &Torus) { torus.neighborhood(id, 1, m); }\n\
             }\n",
        );
        assert!(check_adhoc_neighborhood(&f).is_empty());
    }

    #[test]
    fn lint_header_requires_both_attributes() {
        let f = file("crates/grid/src/lib.rs", "#![forbid(unsafe_code)]\n");
        let v = check_lint_header(&f);
        assert_eq!(v.len(), 1);
        assert!(v[0].1.contains("missing_docs"));
        let ok = file(
            "crates/grid/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n",
        );
        assert!(check_lint_header(&ok).is_empty());
    }

    #[test]
    fn lint_header_only_checks_crate_roots() {
        let f = file("crates/grid/src/torus.rs", "fn f() {}\n");
        assert!(check_lint_header(&f).is_empty());
    }

    #[test]
    fn scoping_is_component_wise() {
        let rule = rule_by_id("unordered-iteration").expect("rule exists");
        assert!(rule.applies_to(Path::new("crates/sim/src/network.rs")));
        assert!(!rule.applies_to(Path::new("crates/simx/src/network.rs")));
        assert!(!rule.applies_to(Path::new("crates/grid/src/torus.rs")));
    }
}
