//! The audit rules, as token queries over [`FileModel`].
//!
//! Each rule names the repo-specific invariant it protects, the path
//! scope it applies to, a short machine-readable fix direction (carried
//! into `--format json`), and a check returning *raw* findings — the
//! engine in [`crate`] applies `audit:allow` suppression centrally, so
//! it can also detect stale and unknown annotations.
//!
//! Token queries see the file as the lexer does: a `HashMap` inside a
//! string or comment can never match, and a call chain split across
//! lines (`Instant::` newline `now()`) is still one sequence — the two
//! classes of false positive/negative the old per-line engine had.
//!
//! Every rule has a fixture tree under `crates/xtask/fixtures/<id>/`
//! proving it fires, exercised by `cargo xtask audit --self-test` and
//! by this crate's unit tests.

use std::path::{Path, PathBuf};

use crate::index::{ItemKind, WorkspaceIndex};
use crate::lexer::TokenKind;
use crate::model::FileModel;

/// Library crate source roots (relative to the audit root). `src` is the
/// root `rbcast` facade crate.
const LIB_SRC: &[&str] = &[
    "crates/grid/src",
    "crates/flow/src",
    "crates/construct/src",
    "crates/sim/src",
    "crates/adversary/src",
    "crates/protocols/src",
    "crates/core/src",
    "crates/net/src",
    "src",
];

/// Crates whose round/delivery order feeds the deterministic trace.
const ORDER_SENSITIVE_SRC: &[&str] = &["crates/sim/src", "crates/protocols/src"];

/// Crates holding the L2/L∞ grid geometry.
const GEOMETRY_SRC: &[&str] = &["crates/grid/src", "crates/construct/src"];

/// `LIB_SRC` plus the bench harness (timing must be annotated there).
const CLOCK_SRC: &[&str] = &[
    "crates/grid/src",
    "crates/flow/src",
    "crates/construct/src",
    "crates/sim/src",
    "crates/adversary/src",
    "crates/protocols/src",
    "crates/core/src",
    "crates/net/src",
    "crates/bench/src",
    "src",
];

/// Modules holding the paper's threshold arithmetic; the
/// `checked-threshold-arith` rule applies only inside these.
const THRESHOLD_MODULES: &[&str] = &[
    "crates/core/src/thresholds.rs",
    "crates/construct/src/cpa_stages.rs",
    "crates/construct/src/impossibility.rs",
    "crates/protocols/src/evidence.rs",
];

/// A raw rule finding, before suppression.
#[derive(Debug, Clone)]
pub struct Finding {
    /// 1-based line of the first matched token.
    pub line: usize,
    /// 1-based column of the first matched token.
    pub col: usize,
    /// Human-readable explanation.
    pub message: String,
}

/// A suppressed-and-sorted audit violation, as reported to the user.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Path relative to the audit root.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// Rule identifier (e.g. `unordered-iteration`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// Short fix direction (stable per rule; carried into JSON output).
    pub fix: &'static str,
}

/// Cross-file context handed to every check.
pub struct Ctx<'a> {
    /// Workspace symbol index over all loaded files.
    pub index: &'a WorkspaceIndex,
}

impl Ctx<'_> {
    /// The file sanctioned to hold raw wall-clock reads: wherever
    /// `fn span` (the obs timing primitive) is defined.
    fn obs_module(&self) -> PathBuf {
        self.index
            .exempt_file(ItemKind::Fn, "span", "crates/core/src/obs.rs")
    }

    /// The file sanctioned to touch `std::thread`: wherever
    /// `fn run_indexed` (the deterministic executor) is defined.
    fn engine_module(&self) -> PathBuf {
        self.index
            .exempt_file(ItemKind::Fn, "run_indexed", "crates/core/src/engine.rs")
    }

    /// The file sanctioned to call `catch_unwind`: wherever
    /// `fn supervise` is defined.
    fn supervisor_module(&self) -> PathBuf {
        self.index
            .exempt_file(ItemKind::Fn, "supervise", "crates/core/src/supervisor.rs")
    }

    /// The file sanctioned to scan `torus.neighborhood`: wherever
    /// `struct NeighborTable` (the CSR arena) is defined.
    fn arena_module(&self) -> PathBuf {
        self.index.exempt_file(
            ItemKind::Struct,
            "NeighborTable",
            "crates/grid/src/arena.rs",
        )
    }

    /// The file sanctioned to read the process environment: wherever
    /// `fn env_var` (the config layer accessor) is defined.
    fn config_module(&self) -> PathBuf {
        self.index
            .exempt_file(ItemKind::Fn, "env_var", "crates/core/src/config.rs")
    }

    /// The file sanctioned to touch raw sockets: wherever
    /// `struct UdpTransport` (the datagram transport) is defined.
    fn transport_module(&self) -> PathBuf {
        self.index.exempt_file(
            ItemKind::Struct,
            "UdpTransport",
            "crates/net/src/transport.rs",
        )
    }
}

/// A static-analysis rule: scope + per-file token check.
pub struct Rule {
    /// Stable identifier used in reports and `--rule`.
    pub id: &'static str,
    /// Name accepted inside `audit:allow(...)` for this rule.
    pub allow_name: &'static str,
    /// One-line description shown by `cargo xtask audit --list`.
    pub summary: &'static str,
    /// Short fix direction, stable per rule (surfaced in JSON output).
    pub fix: &'static str,
    /// Path prefixes (relative to the audit root) the rule applies to.
    pub scopes: &'static [&'static str],
    /// Per-file check returning raw findings (suppression is central).
    pub check: fn(&FileModel, &Ctx) -> Vec<Finding>,
}

impl Rule {
    /// Whether `rel` falls under one of the rule's scope prefixes.
    pub fn applies_to(&self, rel: &Path) -> bool {
        self.scopes.iter().any(|s| rel.starts_with(s))
    }
}

/// Meta-diagnostic id: an `audit:allow` that suppresses nothing.
pub const STALE_ALLOW: &str = "stale-allow";
/// Meta-diagnostic id: an `audit:allow` naming no known rule.
pub const UNKNOWN_ALLOW: &str = "unknown-allow";

/// Fix direction attached to [`STALE_ALLOW`] findings.
pub const STALE_ALLOW_FIX: &str =
    "delete the stale annotation, or re-point it at the finding it was meant to suppress";
/// Fix direction attached to [`UNKNOWN_ALLOW`] findings.
pub const UNKNOWN_ALLOW_FIX: &str =
    "use an allow-name from `cargo xtask audit --list` (ids and allow-names both work)";

/// All audit rules, in reporting order.
pub fn all_rules() -> &'static [Rule] {
    &[
        Rule {
            id: "unordered-iteration",
            allow_name: "unordered",
            summary: "sim/protocols hot paths must not iterate HashMap/HashSet \
                      (use BTreeMap/BTreeSet or sorted drains)",
            fix: "replace with BTreeMap/BTreeSet or drain through a sorted Vec",
            scopes: ORDER_SENSITIVE_SRC,
            check: check_unordered,
        },
        Rule {
            id: "float-eq",
            allow_name: "float-eq",
            summary: "grid/construct geometry must not compare floats with == or != \
                      (use explicit tolerances or integer coordinates)",
            fix: "compare with an explicit tolerance or restate over integer coordinates",
            scopes: GEOMETRY_SRC,
            check: check_float_eq,
        },
        Rule {
            id: "unwrap-panic",
            allow_name: "panic",
            summary: "library crates must not .unwrap() or panic! outside tests \
                      (return Result or use expect with an invariant-naming message)",
            fix: "return a Result, or .expect(\"<invariant that guarantees this>\")",
            scopes: LIB_SRC,
            check: check_unwrap_panic,
        },
        Rule {
            id: "nondeterminism",
            allow_name: "wall-clock",
            summary: "no thread_rng / entropy seeding / wall-clock reads outside \
                      seeded entry points (runs must replay from a u64 seed)",
            fix: "derive all randomness from an explicit u64 seed (StdRng::seed_from_u64)",
            scopes: CLOCK_SRC,
            check: check_nondeterminism,
        },
        Rule {
            id: "obs-wallclock",
            allow_name: "obs-wallclock",
            summary: "raw wall-clock reads (Instant::now / SystemTime) are confined \
                      to rbcast-core's obs module (time through obs::span or \
                      obs::Stopwatch so measurement stays out of hashed state)",
            fix: "time through obs::span(\"area/op\") or obs::Stopwatch",
            scopes: CLOCK_SRC,
            check: check_obs_wallclock,
        },
        Rule {
            id: "raw-thread-spawn",
            allow_name: "raw-thread",
            summary: "raw std::thread spawn/scope is confined to rbcast-core's engine \
                      module (all parallelism must flow through engine::run_indexed \
                      so results stay input-ordered and deterministic)",
            fix: "fan work out through engine::run_indexed",
            scopes: CLOCK_SRC,
            check: check_raw_thread_spawn,
        },
        Rule {
            id: "catch-unwind",
            allow_name: "catch-unwind",
            summary: "catch_unwind is confined to rbcast-core's supervisor module \
                      (panic isolation must flow through the supervisor so failures \
                      are classified, retried, and journalled uniformly)",
            fix: "route the task through supervisor::supervise / run_experiments_supervised",
            scopes: CLOCK_SRC,
            check: check_catch_unwind,
        },
        Rule {
            id: "adhoc-neighborhood",
            allow_name: "adhoc-neighborhood",
            summary: "torus.neighborhood scans are confined to the grid arena module \
                      (hot paths must read the shared CSR NeighborTable; annotate \
                      audit:allow(adhoc-neighborhood) at cold one-shot sites)",
            fix: "read the shared CSR NeighborTable from the topology arena",
            scopes: LIB_SRC,
            check: check_adhoc_neighborhood,
        },
        Rule {
            id: "lint-header",
            allow_name: "lint-header",
            summary: "every library crate root must carry #![forbid(unsafe_code)] \
                      and #![warn(missing_docs)]",
            fix: "add the missing #![…] lint header at the top of the crate root",
            scopes: LIB_SRC,
            check: check_lint_header,
        },
        Rule {
            id: "hot-loop-alloc",
            allow_name: "hot-loop-alloc",
            summary: "no allocation (clone / format! / to_string / to_vec / vec! / \
                      String::new / Box::new) inside for/while/loop bodies in the \
                      sim and protocols hot paths, nor anywhere in a protocol \
                      on_message body (it runs once per delivery — an implicit loop)",
            fix: "hoist the allocation out of the loop or reuse a scratch buffer",
            scopes: ORDER_SENSITIVE_SRC,
            check: check_hot_loop_alloc,
        },
        Rule {
            id: "atomic-ordering",
            allow_name: "atomic-ordering",
            summary: "atomic memory-ordering choices (Ordering::Relaxed/SeqCst/…) are \
                      confined to rbcast-core's obs and engine modules; anywhere else \
                      the choice is a determinism hazard and must carry an annotated \
                      rationale",
            fix: "move the atomic behind an obs/engine primitive, or annotate \
                  audit:allow(atomic-ordering) with the ordering argument",
            scopes: CLOCK_SRC,
            check: check_atomic_ordering,
        },
        Rule {
            id: "checked-threshold-arith",
            allow_name: "checked-threshold-arith",
            summary: "multiplication/shift on fault-bound quantities in the threshold \
                      modules must widen (u64::from / u128) or use checked_* — the \
                      paper's bounds (⌊2r²/3⌋, r(2r+1)) must not silently wrap",
            fix: "widen operands first (u64::from / u128) or use checked_mul/checked_shl",
            scopes: &[
                "crates/core/src",
                "crates/construct/src",
                "crates/protocols/src",
            ],
            check: check_threshold_arith,
        },
        Rule {
            id: "raw-socket-io",
            allow_name: "raw-socket",
            summary: "raw socket I/O (std::net, UdpSocket, TcpStream, TcpListener) is \
                      confined to rbcast-net's transport module (everything above it \
                      must stay transport-agnostic behind the Datagram trait, so the \
                      loopback parity oracle exercises the identical code path)",
            fix: "route datagrams through rbcast_net::transport::Datagram \
                  (UdpTransport / LoopbackHub) instead of opening sockets directly",
            scopes: CLOCK_SRC,
            check: check_raw_socket_io,
        },
        Rule {
            id: "env-read",
            allow_name: "env-read",
            summary: "process-environment reads (std::env::var) are confined to the \
                      config layer (rbcast-core::config) so every RBCAST_* knob is \
                      discoverable, documented, and testable in one place",
            fix: "read through rbcast_core::config (env_var) instead of std::env directly",
            scopes: CLOCK_SRC,
            check: check_env_read,
        },
    ]
}

/// Look up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    all_rules().iter().find(|r| r.id == id)
}

/// Is `name` a valid `audit:allow(...)` name (rule id or allow-name)?
pub fn is_known_allow_name(name: &str) -> bool {
    all_rules()
        .iter()
        .any(|r| r.allow_name == name || r.id == name)
}

/// Does the allow-name `name` suppress findings of `rule`?
pub fn allow_name_matches(rule: &Rule, name: &str) -> bool {
    name == rule.allow_name || name == rule.id
}

fn finding(m: &FileModel, i: usize, message: String) -> Finding {
    let (line, col) = m.at(i);
    Finding { line, col, message }
}

/// Emit one finding per match of any of `pats` outside test regions.
fn scan_seqs(m: &FileModel, pats: &[&[&str]], msg: impl Fn(&[&str]) -> String) -> Vec<Finding> {
    let mut out = Vec::new();
    for p in pats {
        for i in m.find_seq(p, true) {
            out.push(finding(m, i, msg(p)));
        }
    }
    out
}

fn check_unordered(m: &FileModel, _ctx: &Ctx) -> Vec<Finding> {
    let mut out = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for i in m.find_seq(&[ty], true) {
            out.push(finding(
                m,
                i,
                format!(
                    "{ty} in an order-sensitive crate: iteration order is \
                     nondeterministic and would break same-seed trace replay; \
                     use BTree{} or drain through a sorted Vec",
                    &ty[4..]
                ),
            ));
        }
    }
    out
}

fn check_float_eq(m: &FileModel, _ctx: &Ctx) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..m.code_len() {
        if m.meta[i].in_test {
            continue;
        }
        let t = m.code_text(i);
        if t != "==" && t != "!=" {
            continue;
        }
        // Scan the enclosing statement (between `;`/`{`/`}` boundaries)
        // for a float operand — statements may span lines, which the
        // old per-line engine could not see.
        let boundary = |s: &str| matches!(s, ";" | "{" | "}");
        let mut lo = i;
        while lo > 0 && !boundary(m.code_text(lo - 1)) && i - lo < 200 {
            lo -= 1;
        }
        let mut hi = i;
        while hi + 1 < m.code_len() && !boundary(m.code_text(hi + 1)) && hi - i < 200 {
            hi += 1;
        }
        let has_float = (lo..=hi)
            .any(|k| m.ct(k).kind == TokenKind::Float || matches!(m.code_text(k), "f64" | "f32"));
        if has_float {
            out.push(finding(
                m,
                i,
                "floating-point equality in geometry code: exact == / != on \
                 f64 silently misclassifies neighbour distances; compare with \
                 an explicit tolerance or stay in integer grid coordinates"
                    .to_string(),
            ));
        }
    }
    out
}

fn check_unwrap_panic(m: &FileModel, _ctx: &Ctx) -> Vec<Finding> {
    let mut out = scan_seqs(m, &[&[".", "unwrap", "(", ")"]], |_| {
        ".unwrap() in library code: return a Result or use \
         .expect(\"<invariant that guarantees this>\") so failures \
         name the broken invariant"
            .to_string()
    });
    out.extend(scan_seqs(m, &[&["panic", "!"]], |_| {
        "panic! in library code: return an error, or annotate with \
         audit:allow(panic) citing the invariant that makes this \
         unreachable"
            .to_string()
    }));
    out
}

fn check_nondeterminism(m: &FileModel, _ctx: &Ctx) -> Vec<Finding> {
    const BANNED: &[(&[&str], &str)] = &[
        (&["thread_rng"], "OS-entropy RNG breaks same-seed replay"),
        (&["from_entropy"], "entropy seeding breaks same-seed replay"),
        (
            &["SystemTime", "::", "now"],
            "wall-clock reads make runs irreproducible",
        ),
        (
            &["Instant", "::", "now"],
            "wall-clock reads make runs irreproducible",
        ),
        (
            &["rand", "::", "random"],
            "implicit thread-local RNG breaks same-seed replay",
        ),
    ];
    let mut out = Vec::new();
    for (pats, why) in BANNED {
        for i in m.find_seq(pats, true) {
            out.push(finding(
                m,
                i,
                format!(
                    "{}: {why}; every run must derive from an explicit \
                     u64 seed (StdRng::seed_from_u64) or be annotated \
                     audit:allow(wall-clock) at a measurement-only site",
                    pats.join("")
                ),
            ));
        }
    }
    out
}

fn check_obs_wallclock(m: &FileModel, ctx: &Ctx) -> Vec<Finding> {
    if m.rel == ctx.obs_module() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for pats in [&["Instant", "::", "now"][..], &["SystemTime"][..]] {
        for i in m.find_seq(pats, true) {
            out.push(finding(
                m,
                i,
                "raw wall-clock read outside rbcast-core::obs: ad-hoc timing \
                 scatters Instant through code that must stay replayable; \
                 time through obs::span(\"area/op\") or obs::Stopwatch (or \
                 annotate audit:allow(obs-wallclock) explaining why the \
                 measurement cannot route through obs)"
                    .to_string(),
            ));
        }
    }
    out
}

fn check_raw_thread_spawn(m: &FileModel, ctx: &Ctx) -> Vec<Finding> {
    if m.rel == ctx.engine_module() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for what in ["spawn", "scope", "Builder"] {
        for i in m.find_seq(&["thread", "::", what], true) {
            out.push(finding(
                m,
                i,
                format!(
                    "thread::{what} outside rbcast-core::engine: ad-hoc threads do not \
                     preserve input-ordered result collection; fan work out \
                     through engine::run_indexed (or annotate \
                     audit:allow(raw-thread) with a determinism argument)"
                ),
            ));
        }
    }
    out
}

fn check_catch_unwind(m: &FileModel, ctx: &Ctx) -> Vec<Finding> {
    if m.rel == ctx.supervisor_module() {
        return Vec::new();
    }
    scan_seqs(m, &[&["catch_unwind"]], |_| {
        "catch_unwind outside rbcast-core::supervisor: swallowing a \
         panic in place hides the failure from the quarantine report \
         and the checkpoint journal; run the task through \
         supervisor::supervise / run_experiments_supervised instead \
         (or annotate audit:allow(catch-unwind) with an isolation \
         argument)"
            .to_string()
    })
}

fn check_adhoc_neighborhood(m: &FileModel, ctx: &Ctx) -> Vec<Finding> {
    if m.rel == ctx.arena_module() {
        return Vec::new();
    }
    scan_seqs(m, &[&[".", "neighborhood", "("]], |_| {
        "ad-hoc torus.neighborhood scan outside the arena module: \
         it re-derives metric offsets on every call; read the shared \
         CSR NeighborTable instead, or annotate \
         audit:allow(adhoc-neighborhood) at a cold one-shot site"
            .to_string()
    })
}

fn check_lint_header(m: &FileModel, _ctx: &Ctx) -> Vec<Finding> {
    if m.rel.file_name().and_then(|n| n.to_str()) != Some("lib.rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (pats, header) in [
        (
            &["forbid", "(", "unsafe_code", ")"][..],
            "#![forbid(unsafe_code)]",
        ),
        (
            &["warn", "(", "missing_docs", ")"][..],
            "#![warn(missing_docs)]",
        ),
    ] {
        if m.find_seq(pats, false).is_empty() {
            out.push(Finding {
                line: 1,
                col: 1,
                message: format!("crate root is missing the `{header}` lint header"),
            });
        }
    }
    out
}

fn check_hot_loop_alloc(m: &FileModel, _ctx: &Ctx) -> Vec<Finding> {
    const ALLOCS: &[(&[&str], &str)] = &[
        (&[".", "clone", "(", ")"], ".clone()"),
        (&[".", "to_string", "(", ")"], ".to_string()"),
        (&[".", "to_owned", "(", ")"], ".to_owned()"),
        (&[".", "to_vec", "(", ")"], ".to_vec()"),
        (&["format", "!"], "format!"),
        (&["vec", "!"], "vec!"),
        (&["String", "::", "new"], "String::new"),
        (&["String", "::", "from"], "String::from"),
        (&["Vec", "::", "new"], "Vec::new"),
        (&["Box", "::", "new"], "Box::new"),
    ];
    let mut out = Vec::new();
    for (pats, name) in ALLOCS {
        for i in m.find_seq(pats, true) {
            // `on_message` runs once per delivery — the engine's true
            // inner loop, even though no `for` is visible in the file —
            // so straight-line allocation there costs the same as a
            // loop-body allocation anywhere else.
            let per_delivery = m.meta[i]
                .fn_idx
                .is_some_and(|fi| m.code_text(m.fns[fi].kw + 1) == "on_message");
            if m.meta[i].loop_depth == 0 && !per_delivery {
                continue;
            }
            let site = if m.meta[i].loop_depth > 0 {
                format!("inside a loop body (depth {})", m.meta[i].loop_depth)
            } else {
                "in an on_message body (one call per delivery)".to_string()
            };
            out.push(finding(
                m,
                i,
                format!(
                    "{name} {site} on a sim/protocols hot \
                     path: per-iteration allocation dominates round cost at scale; \
                     hoist it out of the loop, reuse a scratch buffer, or annotate \
                     audit:allow(hot-loop-alloc) at a proven-cold site"
                ),
            ));
        }
    }
    out
}

fn check_atomic_ordering(m: &FileModel, ctx: &Ctx) -> Vec<Finding> {
    if m.rel == ctx.obs_module() || m.rel == ctx.engine_module() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for variant in ["Relaxed", "SeqCst", "Acquire", "Release", "AcqRel"] {
        for i in m.find_seq(&["Ordering", "::", variant], true) {
            out.push(finding(
                m,
                i,
                format!(
                    "Ordering::{variant} outside rbcast-core's obs/engine modules: \
                     an ad-hoc atomic ordering choice is a determinism and \
                     correctness hazard reviewers cannot see; route the counter \
                     through obs::Counter / the engine, or annotate \
                     audit:allow(atomic-ordering) stating why this ordering is \
                     sufficient"
                ),
            ));
        }
    }
    out
}

/// Markers that make unchecked `*` / `<<` acceptable within a function:
/// the operands were widened first, or the arithmetic is checked.
fn has_widening_marker(m: &FileModel, lo: usize, hi: usize) -> bool {
    (lo..=hi).any(|k| {
        let t = m.code_text(k);
        t.starts_with("checked_")
            || t.starts_with("saturating_")
            || t == "u128"
            || t == "i128"
            || t == "try_from"
            || (matches!(t, "u64" | "i64" | "f64") && m.seq_at(k, &[t, "::", "from"]))
    })
}

fn check_threshold_arith(m: &FileModel, _ctx: &Ctx) -> Vec<Finding> {
    if !THRESHOLD_MODULES.iter().any(|p| m.rel == Path::new(p)) {
        return Vec::new();
    }
    let value_like = |k: usize| -> bool {
        let t = m.ct(k);
        matches!(t.kind, TokenKind::Ident | TokenKind::Int | TokenKind::Float)
            || matches!(t.text.as_str(), ")" | "]")
    };
    let mut out = Vec::new();
    for i in 1..m.code_len().saturating_sub(1) {
        if m.meta[i].in_test {
            continue;
        }
        let t = m.code_text(i);
        let is_mul = t == "*" && value_like(i - 1) && {
            let n = m.ct(i + 1);
            matches!(n.kind, TokenKind::Ident | TokenKind::Int | TokenKind::Float) || n.text == "("
        };
        let is_shift = t == "<<";
        if !(is_mul || is_shift) {
            continue;
        }
        // Function-scoped dataflow: the enclosing fn must widen or check
        // somewhere, else this arithmetic can wrap at the paper's bounds.
        let (lo, hi) = match m.meta[i].fn_idx {
            Some(fi) => (m.fns[fi].kw, m.fns[fi].close),
            None => (i.saturating_sub(50), (i + 50).min(m.code_len() - 1)),
        };
        if has_widening_marker(m, lo, hi) {
            continue;
        }
        out.push(finding(
            m,
            i,
            format!(
                "unchecked `{t}` on threshold arithmetic: the enclosing function \
                 neither widens (u64::from / u128) nor checks (checked_*) its \
                 operands, so the paper's bound arithmetic (⌊2r²/3⌋, r(2r+1)) \
                 can silently wrap at large radii; widen first or use checked \
                 arithmetic (or annotate audit:allow(checked-threshold-arith) \
                 with a range argument)"
            ),
        ));
    }
    out
}

fn check_raw_socket_io(m: &FileModel, ctx: &Ctx) -> Vec<Finding> {
    if m.rel == ctx.transport_module() {
        return Vec::new();
    }
    // `std :: net` catches qualified paths and `use` imports; the bare
    // type names catch anything brought into scope another way. The
    // socket types also match inside `std::net::…` paths, which just
    // means a fully qualified open reports twice — both findings point
    // at the same line, and both are correct.
    scan_seqs(
        m,
        &[
            &["std", "::", "net"],
            &["UdpSocket"],
            &["TcpStream"],
            &["TcpListener"],
        ],
        |p| {
            format!(
                "raw socket I/O ({}) outside rbcast-net's transport module: code \
                 above the transport must stay behind the Datagram trait so the \
                 loopback parity oracle and the UDP cluster run the identical \
                 protocol/link/runtime path; take a `dyn Datagram` instead (or \
                 annotate audit:allow(raw-socket) with a layering argument)",
                p.join("")
            )
        },
    )
}

fn check_env_read(m: &FileModel, ctx: &Ctx) -> Vec<Finding> {
    if m.rel == ctx.config_module() {
        return Vec::new();
    }
    scan_seqs(
        m,
        &[&["env", "::", "var"], &["env", "::", "var_os"]],
        |_| {
            "process-environment read outside the config layer: scattered \
         RBCAST_* reads make knobs undiscoverable and untestable; read \
         through rbcast_core::config::env_var (or annotate \
         audit:allow(env-read) for a knob that genuinely cannot route \
         through the config layer)"
                .to_string()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file(rel: &str, src: &str) -> FileModel {
        FileModel::parse(Path::new(rel), src)
    }

    fn ctx_over(models: &[FileModel]) -> WorkspaceIndex {
        WorkspaceIndex::build(models)
    }

    fn run(check: fn(&FileModel, &Ctx) -> Vec<Finding>, m: &FileModel) -> Vec<usize> {
        let idx = ctx_over(std::slice::from_ref(m));
        let ctx = Ctx { index: &idx };
        check(m, &ctx).iter().map(|f| f.line).collect()
    }

    #[test]
    fn unordered_fires_on_hashmap_tokens_only() {
        let f = file(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap;\nstruct MyHashMapLike;\nlet s = \"HashMap\";\n",
        );
        assert_eq!(run(check_unordered, &f), vec![1]);
    }

    #[test]
    fn unordered_skips_test_mods() {
        let f = file(
            "crates/sim/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n",
        );
        assert!(run(check_unordered, &f).is_empty());
    }

    #[test]
    fn float_eq_fires_on_literal_and_f64_comparisons() {
        let f = file(
            "crates/grid/src/x.rs",
            "fn g(dist: f64, a: u32, b: f64, n: u32) {\nif dist == 1.0 { }\nif (a as f64) != b { }\nif n == 3 { }\n}\n",
        );
        assert_eq!(run(check_float_eq, &f), vec![2, 3]);
    }

    #[test]
    fn float_eq_sees_multi_line_comparisons() {
        // The old per-line engine missed a comparison whose float operand
        // sat on the next line.
        let f = file(
            "crates/grid/src/x.rs",
            "fn g(dist: f64) -> bool {\n    dist ==\n        1.0\n}\n",
        );
        assert_eq!(run(check_float_eq, &f), vec![2]);
    }

    #[test]
    fn float_eq_ignores_ranges_tuple_indices_and_method_calls() {
        let f = file(
            "crates/grid/src/x.rs",
            "fn g(pair: (u32, u32), n: u32, d1: &[u8], d2: &[u8]) {\n\
             for i in 0..n { let _ = i; }\n\
             let y = pair.0 == n;\n\
             let z = d1.len() != d2.len();\n\
             }\n",
        );
        assert!(run(check_float_eq, &f).is_empty());
    }

    #[test]
    fn unwrap_panic_fires_and_expect_is_fine() {
        let f = file(
            "crates/flow/src/x.rs",
            "let a = x.unwrap();\nlet b = y.expect(\"invariant\");\npanic!(\"boom\");\n",
        );
        assert_eq!(run(check_unwrap_panic, &f), vec![1, 3]);
    }

    #[test]
    fn unwrap_split_across_lines_is_caught() {
        let f = file("crates/flow/src/x.rs", "let a = x\n    .unwrap\n    ();\n");
        assert_eq!(run(check_unwrap_panic, &f), vec![2]);
    }

    #[test]
    fn nondeterminism_fires_and_ignores_strings_and_comments() {
        let f = file(
            "crates/protocols/src/x.rs",
            "let r = rand::thread_rng();\n// thread_rng banned\nlet s = \"Instant::now\";\n",
        );
        assert_eq!(run(check_nondeterminism, &f), vec![1]);
    }

    #[test]
    fn nondeterminism_catches_multi_line_instant_now() {
        let f = file("crates/sim/src/x.rs", "let t = Instant::\n    now();\n");
        assert_eq!(run(check_nondeterminism, &f), vec![1]);
    }

    #[test]
    fn obs_wallclock_exempts_the_defining_module() {
        let obs = file(
            "crates/core/src/obs.rs",
            "pub fn span() {}\nfn t() { let _ = Instant::now(); }\n",
        );
        let other = file(
            "crates/bench/src/perf.rs",
            "let t0 = std::time::Instant::now();\n",
        );
        let idx = ctx_over(&[/* obs defines span */ FileModel::parse(
            Path::new("crates/core/src/obs.rs"),
            "pub fn span() {}\n",
        )]);
        let ctx = Ctx { index: &idx };
        assert!(check_obs_wallclock(&obs, &ctx).is_empty());
        assert_eq!(check_obs_wallclock(&other, &ctx).len(), 1);
    }

    #[test]
    fn raw_thread_spawn_and_catch_unwind_follow_their_modules() {
        let idx = WorkspaceIndex::default();
        let ctx = Ctx { index: &idx };
        let eng = file("crates/core/src/engine.rs", "std::thread::scope(|s| {});\n");
        assert!(check_raw_thread_spawn(&eng, &ctx).is_empty());
        let sup = file(
            "crates/core/src/supervisor.rs",
            "let r = panic::catch_unwind(f);\n",
        );
        assert!(check_catch_unwind(&sup, &ctx).is_empty());
        let elsewhere = file("crates/sim/src/w.rs", "let h = std::thread::spawn(|| 7);\n");
        assert_eq!(check_raw_thread_spawn(&elsewhere, &ctx).len(), 1);
    }

    #[test]
    fn lint_header_requires_both_attributes() {
        let idx = WorkspaceIndex::default();
        let ctx = Ctx { index: &idx };
        let f = file("crates/grid/src/lib.rs", "#![forbid(unsafe_code)]\n");
        let v = check_lint_header(&f, &ctx);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("missing_docs"));
        let ok = file(
            "crates/grid/src/lib.rs",
            "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n",
        );
        assert!(check_lint_header(&ok, &ctx).is_empty());
        let not_root = file("crates/grid/src/torus.rs", "fn f() {}\n");
        assert!(check_lint_header(&not_root, &ctx).is_empty());
    }

    #[test]
    fn hot_loop_alloc_fires_only_inside_loops() {
        let f = file(
            "crates/sim/src/x.rs",
            "fn f(v: &[u32], names: &[String]) {\n\
             let setup = names.to_vec();\n\
             for n in names {\n    let s = n.clone();\n    let m = format!(\"{s}\");\n}\n\
             let after = names[0].clone();\n\
             }\n",
        );
        assert_eq!(run(check_hot_loop_alloc, &f), vec![4, 5]);
    }

    #[test]
    fn hot_loop_alloc_treats_on_message_bodies_as_implicit_loops() {
        // Straight-line allocation fires inside `on_message` (one call
        // per delivery) but not in a same-file helper of another name.
        let f = file(
            "crates/protocols/src/x.rs",
            "fn on_message(&mut self, from: u32) {\n\
             let key = from.to_string();\n\
             self.seen.push(key);\n\
             }\n\
             fn on_round_end(&mut self) {\n\
             let snapshot = self.seen.clone();\n\
             drop(snapshot);\n\
             }\n",
        );
        let v = run(check_hot_loop_alloc, &f);
        assert_eq!(v, vec![2]);
        let msgs = check_hot_loop_alloc(
            &f,
            &Ctx {
                index: &WorkspaceIndex::default(),
            },
        );
        assert!(msgs[0].message.contains("on_message body"));
    }

    #[test]
    fn atomic_ordering_flags_variants_not_cmp_ordering() {
        let f = file(
            "crates/flow/src/x.rs",
            "a.fetch_add(1, Ordering::Relaxed);\nlet c = Ordering::Less;\nuse std::sync::atomic::Ordering;\n",
        );
        assert_eq!(run(check_atomic_ordering, &f), vec![1]);
    }

    #[test]
    fn threshold_arith_requires_widening_in_fn() {
        let f = file(
            "crates/core/src/thresholds.rs",
            "pub fn bad(r: u32) -> u32 { 2 * r * r / 3 }\n\
             pub fn good(r: u32) -> u64 { let r = u64::from(r); r * (2 * r + 1) }\n\
             pub fn checked(r: u32) -> Option<u32> { r.checked_mul(2) }\n\
             pub fn wide(r: u32) -> u64 { let x = 2u128 * u128::from(r); x as u64 }\n",
        );
        assert_eq!(run(check_threshold_arith, &f), vec![1, 1]);
    }

    #[test]
    fn threshold_arith_only_applies_in_threshold_modules() {
        let f = file(
            "crates/core/src/engine.rs",
            "fn f(a: usize) -> usize { a * 2 }\n",
        );
        assert!(run(check_threshold_arith, &f).is_empty());
    }

    #[test]
    fn threshold_arith_ignores_deref_and_flags_shift() {
        let f = file(
            "crates/core/src/thresholds.rs",
            "pub fn deref(p: &u32) -> u32 { let x = *p; x }\n\
             pub fn shl(r: u32) -> u32 { r << 1 }\n",
        );
        assert_eq!(run(check_threshold_arith, &f), vec![2]);
    }

    #[test]
    fn raw_socket_io_confined_to_transport_module() {
        let idx = WorkspaceIndex::default();
        let ctx = Ctx { index: &idx };
        let transport = file(
            "crates/net/src/transport.rs",
            "pub struct UdpTransport;\nlet s = std::net::UdpSocket::bind(a).expect(\"bind\");\n",
        );
        assert!(check_raw_socket_io(&transport, &ctx).is_empty());
        let elsewhere = file(
            "crates/sim/src/w.rs",
            "let s = std::net::UdpSocket::bind(a).expect(\"bind\");\nlet t = TcpListener::bind(a);\n// UdpSocket in a comment is fine\n",
        );
        let v = check_raw_socket_io(&elsewhere, &ctx);
        // Line 1 matches both the `std::net` path and the bare type.
        let lines: Vec<usize> = v.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 1, 2]);
    }

    #[test]
    fn raw_socket_io_follows_the_udp_transport_definition() {
        // The exemption tracks wherever `struct UdpTransport` lives, not
        // a hard-coded path.
        let moved = file(
            "crates/net/src/udp.rs",
            "pub struct UdpTransport;\nuse std::net::UdpSocket;\n",
        );
        assert!(run(check_raw_socket_io, &moved).is_empty());
    }

    #[test]
    fn env_read_confined_to_config_module() {
        let idx = WorkspaceIndex::default();
        let ctx = Ctx { index: &idx };
        let cfg = file(
            "crates/core/src/config.rs",
            "let v = std::env::var(\"RBCAST_X\");\n",
        );
        assert!(check_env_read(&cfg, &ctx).is_empty());
        let eng = file(
            "crates/core/src/engine.rs",
            "let v = std::env::var(\"RBCAST_X\");\n",
        );
        assert_eq!(check_env_read(&eng, &ctx).len(), 1);
    }

    #[test]
    fn allow_names_and_ids_both_resolve() {
        assert!(is_known_allow_name("unordered"));
        assert!(is_known_allow_name("unordered-iteration"));
        assert!(is_known_allow_name("hot-loop-alloc"));
        assert!(!is_known_allow_name("wall-clock-typo"));
        let rule = rule_by_id("nondeterminism").expect("rule exists");
        assert!(allow_name_matches(rule, "wall-clock"));
        assert!(allow_name_matches(rule, "nondeterminism"));
        assert!(!allow_name_matches(rule, "obs-wallclock"));
    }

    #[test]
    fn scoping_is_component_wise() {
        let rule = rule_by_id("unordered-iteration").expect("rule exists");
        assert!(rule.applies_to(Path::new("crates/sim/src/network.rs")));
        assert!(!rule.applies_to(Path::new("crates/simx/src/network.rs")));
        assert!(!rule.applies_to(Path::new("crates/grid/src/torus.rs")));
    }
}
