//! Lightweight Rust source model for the audit rules.
//!
//! The audit does not parse Rust; it works on a per-line view of each
//! file in which comments and string literals have been blanked out, so
//! token searches cannot be fooled by text inside `// ...`, `/* ... */`,
//! doc comments, or `"..."` literals. On top of that view the model
//! tracks two pieces of context every rule needs:
//!
//! * which lines live inside a `#[cfg(test)]` item (rules skip those), and
//! * which `audit:allow(rule)` annotations apply to each line.
//!
//! An annotation is written in a comment, either trailing the offending
//! line or on a comment line directly above it:
//!
//! ```text
//! let t0 = Instant::now(); // audit:allow(wall-clock)
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One analysed line of a source file.
#[derive(Debug)]
pub struct LineInfo {
    /// 1-based line number.
    pub number: usize,
    /// The line exactly as written (annotations are parsed from this).
    pub raw: String,
    /// The line with comments and string/char literals blanked to spaces.
    pub code: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// `audit:allow(...)` rule names that apply to this line.
    pub allowed: Vec<String>,
}

impl LineInfo {
    /// Whether `rule` is allow-listed on this line.
    pub fn allows(&self, rule: &str) -> bool {
        self.allowed.iter().any(|a| a == rule)
    }
}

/// A source file after comment blanking and test-region analysis.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the audit root.
    pub rel: PathBuf,
    /// Analysed lines, in file order.
    pub lines: Vec<LineInfo>,
}

impl SourceFile {
    /// Load and analyse the file at `root.join(rel)`.
    pub fn load(root: &Path, rel: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(root.join(rel))?;
        Ok(Self::from_text(rel, &text))
    }

    /// Analyse in-memory source text (used by the self-tests).
    pub fn from_text(rel: &Path, text: &str) -> Self {
        let blanked = blank_comments_and_strings(text);
        let raw_lines: Vec<&str> = text.lines().collect();
        let code_lines: Vec<&str> = blanked.lines().collect();
        let in_test = test_region_mask(&code_lines);
        let per_line_allows: Vec<Vec<String>> = raw_lines.iter().map(|l| parse_allows(l)).collect();

        let lines = raw_lines
            .iter()
            .enumerate()
            .map(|(i, raw)| {
                // An annotation applies to its own line, and a
                // comment-only annotation line also covers the line below.
                let mut allowed = per_line_allows[i].clone();
                if i > 0 && raw_lines[i - 1].trim_start().starts_with("//") {
                    allowed.extend(per_line_allows[i - 1].iter().cloned());
                }
                LineInfo {
                    number: i + 1,
                    raw: (*raw).to_string(),
                    code: code_lines
                        .get(i)
                        .map_or(String::new(), |c| (*c).to_string()),
                    in_test: in_test.get(i).copied().unwrap_or(false),
                    allowed,
                }
            })
            .collect();

        SourceFile {
            rel: rel.to_path_buf(),
            lines,
        }
    }
}

/// Extract `audit:allow(a, b)` rule names from one raw line.
fn parse_allows(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find("audit:allow(") {
        let after = &rest[pos + "audit:allow(".len()..];
        if let Some(close) = after.find(')') {
            for name in after[..close].split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    out.push(name.to_string());
                }
            }
            rest = &after[close + 1..];
        } else {
            break;
        }
    }
    out
}

/// Replace comments and string/char literal contents with spaces,
/// preserving line structure so line/column positions stay meaningful.
fn blank_comments_and_strings(text: &str) -> String {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u8),
        Char,
    }

    let bytes: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0u8;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        out.push('"');
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with a
                    // quote within a few chars ('x', '\n', '\u{...}').
                    let lookahead: String = bytes[i + 1..bytes.len().min(i + 12)].iter().collect();
                    let is_char = if let Some(rest) = lookahead.strip_prefix('\\') {
                        rest.contains('\'')
                    } else {
                        lookahead.chars().nth(1) == Some('\'')
                    };
                    if is_char {
                        state = State::Char;
                        out.push('\'');
                        i += 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Preserve line structure across `\<newline>` string
                    // continuations and escaped quotes alike.
                    out.push(' ');
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u8;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = State::Code;
                        out.push('"');
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i = j;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    out.push(' ');
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out
}

/// Mark lines covered by `#[cfg(test)]` items.
///
/// The scan works on blanked code: when a `#[cfg(test)]` attribute is
/// seen, the following item is skipped — either to the `;` that closes a
/// braceless item, or through the brace-balanced block that follows.
fn test_region_mask(code_lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; code_lines.len()];
    let mut i = 0;
    while i < code_lines.len() {
        if !code_lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Mark from the attribute line through the end of the item.
        let mut depth: i32 = 0;
        let mut entered = false;
        let mut j = i;
        while j < code_lines.len() {
            mask[j] = true;
            for ch in code_lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => depth -= 1,
                    ';' if !entered && depth == 0 => {
                        // Braceless item such as `#[cfg(test)] use ...;`
                        entered = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if entered && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_and_block_comments() {
        let out = blank_comments_and_strings("a // HashMap\nb /* panic! */ c");
        assert!(!out.contains("HashMap"));
        assert!(!out.contains("panic"));
        assert!(out.contains('a') && out.contains('b') && out.contains('c'));
    }

    #[test]
    fn blanks_string_literals_but_keeps_quotes() {
        let out = blank_comments_and_strings("let s = \"Instant::now()\";");
        assert!(!out.contains("Instant"));
        assert!(out.contains("let s = \""));
    }

    #[test]
    fn blanks_raw_strings() {
        let out = blank_comments_and_strings("let s = r#\"thread_rng\"#;");
        assert!(!out.contains("thread_rng"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let out = blank_comments_and_strings("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(out.contains("'a"));
    }

    #[test]
    fn nested_block_comments() {
        let out = blank_comments_and_strings("a /* x /* y */ z */ b");
        assert!(!out.contains('x') && !out.contains('y') && !out.contains('z'));
        assert!(out.contains('a') && out.contains('b'));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::from_text(Path::new("x.rs"), src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_braceless_item_is_masked() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let f = SourceFile::from_text(Path::new("x.rs"), src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn trailing_annotation_applies_to_line() {
        let src = "let t = now(); // audit:allow(wall-clock)\n";
        let f = SourceFile::from_text(Path::new("x.rs"), src);
        assert!(f.lines[0].allows("wall-clock"));
        assert!(!f.lines[0].allows("panic"));
    }

    #[test]
    fn preceding_comment_annotation_covers_next_line() {
        let src = "// audit:allow(unordered, panic)\nlet m = HashMap::new();\n";
        let f = SourceFile::from_text(Path::new("x.rs"), src);
        assert!(f.lines[1].allows("unordered"));
        assert!(f.lines[1].allows("panic"));
        assert!(!f.lines[0].in_test);
    }
}
