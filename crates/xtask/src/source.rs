//! Legacy line-blanking analysis, retained as a differential oracle.
//!
//! Until PR 6 the audit worked on a per-line view of each file in which
//! comments and string literals had been blanked to spaces. The audit
//! proper now runs on the token model ([`crate::lexer`] /
//! [`crate::model`]); this module keeps the old blanker alive for one
//! purpose: the differential self-test below lexes every `.rs` file in
//! the workspace and checks that [`crate::model::blanked_view`] —
//! reconstructed from tokens — agrees byte-for-byte with
//! [`blank_comments_and_strings`]. Any divergence is either a lexer bug
//! or a documented fix over the legacy behaviour, and the known-fix
//! fixtures in the tests enumerate the latter.
//!
//! The legacy rendering rules the token view reproduces:
//!
//! * `//`, `/*`, `*/` introducers become two spaces; comment interiors
//!   become spaces, newlines preserved;
//! * string/char interiors become spaces, delimiters kept; escape
//!   sequences become two spaces;
//! * raw-string prefixes (`r`, `#`s) become spaces with the opening
//!   quote kept; closing quote kept with trailing `#`s blanked.

/// Replace comments and string/char literal contents with spaces,
/// preserving line structure so line/column positions stay meaningful.
///
/// This is the legacy audit's analysis core, kept as the reference
/// implementation for the differential self-test.
#[must_use]
pub fn blank_comments_and_strings(text: &str) -> String {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u8),
        Char,
    }

    let bytes: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                }
                'r' if matches!(next, Some('"') | Some('#')) => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0u8;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        out.push('"');
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a literal closes with a
                    // quote within a few chars ('x', '\n', '\u{...}').
                    let lookahead: String = bytes[i + 1..bytes.len().min(i + 12)].iter().collect();
                    let is_char = if let Some(rest) = lookahead.strip_prefix('\\') {
                        rest.contains('\'')
                    } else {
                        lookahead.chars().nth(1) == Some('\'')
                    };
                    if is_char {
                        state = State::Char;
                        out.push('\'');
                        i += 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    // Preserve line structure across `\<newline>` string
                    // continuations and escaped quotes alike.
                    out.push(' ');
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                } else if c == '"' {
                    state = State::Code;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u8;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        state = State::Code;
                        out.push('"');
                        for _ in 0..hashes {
                            out.push(' ');
                        }
                        i = j;
                    } else {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    out.push(' ');
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::blanked_view;

    #[test]
    fn blanks_line_and_block_comments() {
        let out = blank_comments_and_strings("a // HashMap\nb /* panic! */ c");
        assert!(!out.contains("HashMap"));
        assert!(!out.contains("panic"));
        assert!(out.contains('a') && out.contains('b') && out.contains('c'));
    }

    #[test]
    fn blanks_string_literals_but_keeps_quotes() {
        let out = blank_comments_and_strings("let s = \"Instant::now()\";");
        assert!(!out.contains("Instant"));
        assert!(out.contains("let s = \""));
    }

    #[test]
    fn nested_block_comments() {
        let out = blank_comments_and_strings("a /* x /* y */ z */ b");
        assert!(!out.contains('x') && !out.contains('y') && !out.contains('z'));
        assert!(out.contains('a') && out.contains('b'));
    }

    // -----------------------------------------------------------------
    // Differential self-test: token view vs. legacy blanker
    // -----------------------------------------------------------------

    use crate::lexer::{Token, TokenKind};

    /// Undo the one known legacy artifact before byte comparison.
    ///
    /// The legacy state machine blanks a raw-string opener `r#"` by
    /// pushing a space for every prefix char *including the quote* and
    /// then pushing the quote again — its output is one char longer per
    /// raw string, silently shifting every column to the right of the
    /// opener. The token view keeps true positions. Deleting the
    /// inserted space at each opener (in order, so indices stay
    /// aligned) makes the remainder byte-comparable; any other
    /// divergence is a real disagreement and fails the test.
    fn normalize_legacy(legacy: &str, text: &str, tokens: &[Token]) -> String {
        let src: Vec<char> = text.chars().collect();
        let mut out: Vec<char> = legacy.chars().collect();
        for t in tokens {
            if !matches!(t.kind, TokenKind::RawStr | TokenKind::RawByteStr) {
                continue;
            }
            let quote = (t.start..t.end)
                .find(|&i| src[i] == '"')
                .expect("raw string token contains its opening quote");
            assert_eq!(out[quote], ' ', "expected the legacy inserted space");
            out.remove(quote);
        }
        out.into_iter().collect()
    }

    fn diff_lines(a: &str, b: &str) -> Vec<usize> {
        a.lines()
            .zip(b.lines())
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, _)| i + 1)
            .collect()
    }

    #[test]
    fn token_view_agrees_on_simple_sources() {
        for src in [
            "fn f() { let x = 1; } // tail\n",
            "let s = \"with \\\"escape\\\"\";\n",
            "let r = r#\"raw \"inner\" text\"#;\n",
            "/* block /* nested */ done */ fn g() {}\n",
            "let c = '\\n'; let l: &'static str = \"x\";\n",
            "let b = b\"bytes\"; let rb = br#\"raw bytes\"#;\n",
        ] {
            let legacy = blank_comments_and_strings(src);
            let tokens = lex(src);
            let view = blanked_view(src, &tokens);
            assert_eq!(
                normalize_legacy(&legacy, src, &tokens),
                view,
                "divergence on: {src}"
            );
        }
    }

    /// Every `.rs` file in the workspace must blank identically through
    /// the legacy state machine and the token view. This is the proof
    /// that the new lexer sees the same code surface the old audit saw
    /// — no silently skipped regions, no mis-lexed literals.
    #[test]
    fn token_view_agrees_with_legacy_blanker_across_workspace() {
        let root = crate::workspace_root();
        let mut files = Vec::new();
        for dir in ["crates", "src"] {
            let d = root.join(dir);
            if d.is_dir() {
                crate::collect_rs_files(&d, &root, &mut files).expect("workspace readable");
            }
        }
        assert!(files.len() > 20, "workspace walk found too few files");
        let mut divergent = Vec::new();
        for rel in files {
            let text = std::fs::read_to_string(root.join(&rel)).expect("file readable");
            let tokens = lex(&text);
            let legacy = normalize_legacy(&blank_comments_and_strings(&text), &text, &tokens);
            let view = blanked_view(&text, &tokens);
            if legacy != view {
                divergent.push(format!(
                    "{}: lines {:?}",
                    rel.display(),
                    diff_lines(&legacy, &view)
                ));
            }
        }
        assert!(
            divergent.is_empty(),
            "token view diverges from legacy blanker:\n{}",
            divergent.join("\n")
        );
    }

    /// Known fixes over the legacy blanker, kept as executable
    /// documentation: each case is a construct the old state machine
    /// got *wrong* and the lexer gets right, asserted verbatim so a
    /// change to either side is loud.
    #[test]
    fn known_divergences_are_lexer_fixes() {
        // 1. Raw-string opener off-by-one: legacy output is one char
        //    longer per raw string, shifting every column after the
        //    opener. The token view preserves true positions.
        let src = "let r = r\"x\"; let after = 1;\n";
        let legacy = blank_comments_and_strings(src);
        let tokens = lex(src);
        let view = blanked_view(src, &tokens);
        assert_eq!(legacy.len(), src.len() + 1, "legacy inserts one char");
        assert_eq!(view.len(), src.len(), "token view is length-preserving");
        assert_eq!(normalize_legacy(&legacy, src, &tokens), view);

        // 2. A char literal holding a long escape: the legacy
        //    lookahead recognises '\u{1F600}' only because its window
        //    happens to be 12 chars wide. The lexer has no window.
        let src2 = "let c = '\\u{1F600}'; let after = 1;\n";
        let view2 = blanked_view(src2, &lex(src2));
        assert!(
            view2.contains("let after = 1;"),
            "code after long escape survives"
        );
        assert!(!view2.contains("1F600"), "escape interior is blanked");

        // 3. Lifetimes vs char literals: the lexer scans the full
        //    identifier instead of a 2-char guess, so `<'a>` generics
        //    and `'a'` literals stay distinct in all contexts.
        let src3 = "fn f<'a>(x: &'a u8) -> u8 { let c = 'a'; *x + c as u8 }\n";
        let view3 = blanked_view(src3, &lex(src3));
        assert!(view3.contains("<'a>"), "lifetime params survive");
        assert!(view3.contains("' '"), "char literal interior blanked");
    }
}
