//! Watch the Byzantine-tolerant commit wavefront spread across the grid.
//!
//! Runs the simplified indirect-report protocol with a hostile cluster of
//! forgers at the maximum tolerable `t`, then renders the torus as an
//! ASCII map of commit rounds: the source `S`, faulty nodes `X`, and each
//! honest node's commit round as a hex digit.
//!
//! ```sh
//! cargo run --release --example byzantine_frontier
//! ```

use rbcast::adversary::Placement;
use rbcast::core::thresholds;
use rbcast::grid::{Coord, Metric, Torus};
use rbcast::protocols::{attackers, Indirect, IndirectConfig, Msg, ProtocolParams};
use rbcast::sim::{Network, Process};

fn main() {
    let r = 2u32;
    let t = thresholds::byzantine_max_t(r) as usize;
    let torus = Torus::for_radius(r);
    let source = torus.id(Coord::ORIGIN);
    let params = ProtocolParams {
        source,
        value: true,
        t,
    };
    let faults = Placement::FrontierCluster { t }.place(&torus, r, Metric::Linf);

    let fs = faults.clone();
    let mut net = Network::new(torus.clone(), r, Metric::Linf, move |id| {
        if fs.contains(&id) {
            attackers::forger(false)
        } else {
            Box::new(Indirect::new(params, IndirectConfig::simplified())) as Box<dyn Process<Msg>>
        }
    });
    let stats = net.run(10_000);

    println!("simplified indirect protocol, r = {r}, t = {t} forgers clustered on the wavefront");
    println!("{stats}\n");
    println!("commit-round map (S = source, X = faulty, . = never decided):\n");
    print!(
        "{}",
        rbcast::core::render::commit_map(&torus, source, &faults, true, |id| net.decision(id))
    );

    let wrong = torus
        .node_ids()
        .filter(|&id| matches!(net.decision(id), Some((false, _))))
        .count();
    let undecided = torus
        .node_ids()
        .filter(|&id| !faults.contains(&id) && net.decision(id).is_none())
        .count();
    println!("\nwrong commits: {wrong}, undecided honest nodes: {undecided}");
    println!("(the wavefront flows around the forger cluster — rounds grow with distance)");
}
