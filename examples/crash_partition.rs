//! The Theorem 4 impossibility construction, live.
//!
//! Places the width-`r` faulty strips (exactly `r(2r+1)` faults in the
//! worst neighborhood — one below that, broadcast would be achievable)
//! and shows flooding reach the whole source side while the far side
//! starves.
//!
//! ```sh
//! cargo run --release --example crash_partition
//! ```

use rbcast::adversary::{local_fault_bound, Placement};
use rbcast::core::thresholds;
use rbcast::grid::{Coord, Metric, Torus};
use rbcast::protocols::{Flood, Msg, ProtocolParams};
use rbcast::sim::{Network, Process};

fn main() {
    let r = 2u32;
    let torus = Torus::for_radius(r);
    let faults = Placement::DoubleStrip.place(&torus, r, Metric::Linf);
    let bound = local_fault_bound(&torus, r, Metric::Linf, &faults);

    println!("crash-stop impossibility (Theorem 4), r = {r}, {torus}");
    println!(
        "strip faults: {} total, local bound = {bound} = r(2r+1) = {}",
        faults.len(),
        thresholds::crash_impossible_t(r)
    );

    let source = torus.id(Coord::ORIGIN);
    let params = ProtocolParams {
        source,
        value: true,
        t: bound,
    };
    let mut net = Network::new(torus.clone(), r, Metric::Linf, |_| {
        Box::new(Flood::new(params)) as Box<dyn Process<Msg>>
    });
    for &f in &faults {
        net.crash_at(f, 0);
    }
    let stats = net.run(1_000);
    println!("{stats}\n");

    println!("reach map (S = source, X = crashed strip, digits = commit round, . = stranded):\n");
    print!(
        "{}",
        rbcast::core::render::commit_map(&torus, source, &faults, true, |id| net.decision(id))
    );
    let reached = torus
        .node_ids()
        .filter(|&id| !faults.contains(&id) && id != source && net.decision(id).is_some())
        .count();
    let stranded = torus
        .node_ids()
        .filter(|&id| !faults.contains(&id) && net.decision(id).is_none())
        .count();
    println!("\nreached: {reached}, stranded: {stranded}");
    println!("one fault fewer per neighborhood and Theorem 5 guarantees full coverage.");
}
