//! Random node failures and the percolation transition (§XI).
//!
//! Sweeps the independent fault probability and draws the coverage curve
//! for two radii — the site-percolation connection the paper's
//! conclusion points to: richer neighborhoods (larger `r`) keep the
//! broadcast alive to much higher failure rates.
//!
//! ```sh
//! cargo run --release --example percolation_sweep
//! ```

use rbcast::core::percolation;
use rbcast::grid::Torus;

use rbcast::core::render::bar;

fn main() {
    let ps: Vec<f64> = (0..=19).map(|i| f64::from(i) * 0.05).collect();
    for r in [1u32, 2] {
        let torus = Torus::for_radius(r);
        println!("\nflooding coverage vs node-failure probability (r = {r}, {torus}, 8 trials)\n");
        for row in percolation::sweep(r, &torus, &ps, 8) {
            println!(
                "p = {:>4.2} |{}| {:>6.1}%",
                row.p,
                bar(row.mean_reached, 40),
                100.0 * row.mean_reached
            );
        }
    }
    println!("\nthe transition sharpens and moves right with r — the site-percolation");
    println!("threshold of the r-ball lattice graph (§XI / Grimmett).");
}
