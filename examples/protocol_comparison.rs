//! Compare the paper's protocols under identical fault pressure.
//!
//! At each `t` a cluster of `t` silent Byzantine nodes sits on the
//! wavefront; CPA (the simple protocol), the simplified indirect
//! protocol, and the full four-hop indirect protocol run side by side.
//! The table shows who completes and at what message cost — the paper's
//! central trade-off: indirect reports buy a higher threshold
//! (`t < ½·r(2r+1)` instead of `t ≤ ⅔·r²`) at higher traffic.
//!
//! ```sh
//! cargo run --release --example protocol_comparison
//! ```

use rbcast::adversary::Placement;
use rbcast::core::{thresholds, Experiment, FaultKind, ProtocolKind};

fn main() {
    let r = 2u32;
    println!(
        "r = {r}: Theorem 6 CPA guarantee t ≤ {}, exact threshold t ≤ {}\n",
        thresholds::cpa_guaranteed_t(r),
        thresholds::byzantine_max_t(r),
    );
    println!(
        "{:>3} {:<22} {:>9} {:>7} {:>10} {:>12} {:>8}",
        "t", "protocol", "correct", "wrong", "undecided", "broadcasts", "rounds"
    );
    println!("{}", "-".repeat(78));

    for t in 0..=(thresholds::byzantine_max_t(r) as usize) {
        for kind in [
            ProtocolKind::Cpa,
            ProtocolKind::IndirectSimplified,
            ProtocolKind::IndirectFull,
        ] {
            let o = Experiment::new(r, kind)
                .with_t(t)
                .with_placement(Placement::FrontierCluster { t })
                .with_fault_kind(FaultKind::Silent)
                .run();
            println!(
                "{:>3} {:<22} {:>9} {:>7} {:>10} {:>12} {:>8}",
                t,
                kind.name(),
                o.committed_correct,
                o.committed_wrong,
                o.undecided,
                o.stats.messages_sent,
                o.stats.rounds
            );
        }
        println!();
    }
    println!("CPA stalls first; the indirect protocols pay report traffic for the");
    println!("exact threshold; the simplified variant gets it at a fraction of the");
    println!("full protocol's four-hop HEARD volume.");
}
