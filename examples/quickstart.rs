//! Quickstart: one Byzantine reliable broadcast at the exact threshold.
//!
//! Runs the simplified indirect-report protocol (§VI-B) on a 20×20 torus
//! with radius 2 under the maximum tolerable number of Byzantine liars
//! packed into a single neighborhood, and prints the outcome.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rbcast::adversary::Placement;
use rbcast::core::{thresholds, Experiment, FaultKind, ProtocolKind};

fn main() {
    let r = 2;
    // Theorem 1: reliable broadcast is achievable iff t < ½·r(2r+1) = 5.
    let t = thresholds::byzantine_max_t(r) as usize; // 4

    println!("radius r = {r}");
    println!("Byzantine threshold: t < ½·r(2r+1) = {}", r * (2 * r + 1));
    println!("running at the maximum tolerable t = {t} (liar cluster)\n");

    let outcome = Experiment::new(r, ProtocolKind::IndirectSimplified)
        .with_t(t)
        .with_placement(Placement::FrontierCluster { t })
        .with_fault_kind(FaultKind::Liar)
        .run();

    println!("outcome: {outcome}");
    assert!(outcome.all_honest_correct());
    println!("\nevery honest node committed the source's value — reliable broadcast achieved.");

    // One past the threshold the adversary defeats reliable broadcast
    // (Koo's impossibility construction, matched exactly by Theorem 1):
    // with t+1 liars per neighborhood, a full fake quorum of disjoint
    // reports exists and honest nodes are deceived or starved.
    let beyond = Experiment::new(r, ProtocolKind::IndirectSimplified)
        .with_t(t)
        .with_placement(Placement::CheckerStrips)
        .with_fault_kind(FaultKind::Liar)
        .run();
    println!("\nat t = {} (checkerboard strips): {beyond}", t + 1);
    assert!(beyond.committed_wrong > 0 || beyond.undecided > 0);
    println!(
        "reliable broadcast fails one past the threshold ({} deceived, {} starved) — the threshold is exact.",
        beyond.committed_wrong, beyond.undecided
    );
}
