//! Command-line interface of the `rbcast` binary.
//!
//! Subcommands:
//!
//! * `thresholds [--r-max N]` — print the paper's bound curves;
//! * `run …` — run one broadcast experiment and print the outcome;
//! * `sweep …` — sweep `t` from 0 to `--t-max` and report completion;
//! * `audit …` — materialise a placement and audit its local bound.
//!
//! Parsing is deliberately dependency-free; see [`parse`] for the
//! grammar and `rbcast help` for usage.

use crate::adversary::{local_fault_bound, Placement};
use crate::core::supervisor::{self, Journal, JournalHeader, SupervisorConfig, TaskReport};
use crate::core::{engine, obs, thresholds, EngineKind, Experiment, FaultKind, ProtocolKind};
use crate::grid::{Metric, NodeId, Torus};
use crate::sim::ChannelConfig;
use std::path::PathBuf;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// Print the bound curves up to `r_max`.
    Thresholds {
        /// Largest radius tabulated.
        r_max: u32,
    },
    /// Run one experiment.
    Run(RunSpec),
    /// Sweep the fault budget.
    Sweep {
        /// The experiment template (its `t` is the sweep's start).
        spec: RunSpec,
        /// Inclusive sweep end.
        t_max: usize,
        /// Supervision options (threads, journal, resume, retries…).
        opts: SweepOpts,
    },
    /// Audit a placement's local fault bound.
    Audit {
        /// Radius.
        r: u32,
        /// The placement to audit.
        placement: Placement,
        /// Metric.
        metric: Metric,
    },
    /// Search for worst-case fault placements (seeded annealing).
    Attack(crate::cli_attack::AttackSpec),
    /// Run one networked node over UDP (a cluster child process).
    Serve(crate::cli_net::ServeSpec),
    /// Run a whole networked cluster and check sim parity.
    Cluster {
        /// Shared per-node configuration.
        spec: crate::cli_net::NetSpec,
        /// Orchestration options (transport, kill injection, scratch dir).
        opts: crate::cli_net::ClusterOpts,
    },
}

/// Sweep-only supervision knobs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepOpts {
    /// Worker threads (`None` = `RBCAST_THREADS` or all cores).
    pub threads: Option<usize>,
    /// Checkpoint journal to write (`--journal`). No default path: the
    /// sweep journals only when asked to.
    pub journal: Option<PathBuf>,
    /// Journal to resume from (`--resume`): completed tasks are skipped
    /// and their stored rows reprinted; failures re-run. New completions
    /// are appended to the same file, so repeated resumes converge.
    pub resume: Option<PathBuf>,
    /// Attempts per task (`--retries`; `None` = `RBCAST_RETRIES` or 2).
    pub retries: Option<u32>,
    /// Per-task round budget (`--round-budget`; `None` =
    /// `RBCAST_ROUND_BUDGET` or unbounded).
    pub round_budget: Option<u32>,
    /// Directory for per-task trace streams (`--trace-dir`): task `i`
    /// writes `task-<i>.jsonl`. Trace payloads are pure functions of
    /// simulation state, so the files are byte-identical at any thread
    /// count.
    pub trace_dir: Option<PathBuf>,
    /// Print the per-phase wall-clock timing table after the sweep
    /// (`--timings`). Timing is diagnostics only — it never feeds the
    /// journal, the rows, or the exit code.
    pub timings: bool,
}

/// Everything needed to run one experiment from the CLI.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Transmission radius.
    pub r: u32,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Fault budget (`None` = the protocol's proven maximum).
    pub t: Option<usize>,
    /// Distance metric.
    pub metric: Metric,
    /// Fault placement (`None` = fault-free).
    pub placement: Option<Placement>,
    /// Faulty-node behaviour.
    pub behavior: FaultKind,
    /// Channel model.
    pub channel: ChannelConfig,
    /// Whether the run may stop once every honest node has decided
    /// (default true; `--no-early-term` disables it to measure the full
    /// tail until quiescence).
    pub early_termination: bool,
    /// Stream the run's structured trace events to this file as JSONL
    /// (`--trace`).
    pub trace: Option<PathBuf>,
    /// Simulator round loop (`--dense` selects the dense oracle; the
    /// sparse wavefront engine is the default).
    pub engine: EngineKind,
}

/// Usage text.
pub const USAGE: &str = "\
rbcast — reliable broadcast in a grid radio network (Bhandari & Vaidya, PODC 2005)

USAGE:
  rbcast thresholds [--r-max N]
  rbcast run   [--protocol P] [--r N] [--t N] [--metric M] [--placement PL]
               [--behavior B] [--seed N] [--prob F] [--repeats N]
               [--loss F] [--redundancy N] [--spoofing] [--jam N]
               [--no-early-term] [--trace FILE] [--dense]
  rbcast sweep --t-max N [--threads N] [--journal FILE] [--resume FILE]
               [--retries N] [--round-budget N] [--trace-dir DIR]
               [--timings] [run options]
  rbcast audit --placement PL [--r N] [--t N] [--seed N] [--metric M]
  rbcast attack [--seed N] [--steps N] [--threads N] [--r N]...
               [--protocol P] [--behavior B] [--metric M] [--gate]
               [--journal FILE | --resume FILE] [--checkpoint-every N]
               [--out DIR] [--timings]
  rbcast serve --node I [net options] [--journal FILE] [--out FILE]
  rbcast cluster [net options] [--transport udp|loopback] [--kill I]
               [--dir DIR]
  rbcast help

  P  = flood | persistent-flood | cpa | indirect-full | indirect-simplified
  M  = linf | l2
  PL = cluster | random | double-strip | checker-strips | column-strips
       | bernoulli | file:PATH
  B  = crash | silent | liar | forger | spoofer | mixed

  Sweeps fan out over worker threads through the deterministic engine:
  output is byte-identical for every thread count. --threads overrides
  the RBCAST_THREADS environment variable; the default is all cores.

  Sweeps run supervised: a panicking or deadline-blown run is retried
  (--retries attempts per task, default 2) and then quarantined — its
  row is reported as such while every healthy row prints normally, and
  the process exits 2. --round-budget arms a per-run watchdog.
  --journal FILE appends one JSON line per completed or failed task;
  --resume FILE reloads such a journal, reprints the completed rows
  without re-running them, re-runs only the failures, and appends new
  completions to the same file, so repeated resumes converge.

  Runs stop as soon as every honest node has decided (the delivery-trace
  hash is frozen at that round either way, so determinism gates are
  unaffected). --no-early-term lets the run idle to quiescence instead,
  which is what message-complexity measurements need.

  The simulator's default round loop is the sparse wavefront engine:
  only nodes on the active frontier (heard something, or declared a
  pending wakeup) do per-round work. --dense falls back to the original
  every-node-every-round loop — byte-identical output, torus-area cost —
  which the determinism gate keeps as a parity oracle.

  --trace FILE streams the run's structured events (rounds,
  transmissions, deliveries, jams, losses, decisions, protocol notes) as
  one JSON object per line; the simulator's delivery-trace hash is
  derivable from the stream, and the file is byte-identical for the same
  experiment at any thread count. --trace-dir DIR does the same per
  sweep task (task-<i>.jsonl). --timings prints a wall-clock per-phase
  table after the sweep; timing never feeds anything deterministic.

  Journals created by this version begin with a header line
  fingerprinting the sweep specification; --resume refuses a journal
  whose fingerprint does not match the requested sweep (exit 2), since
  its task indices would alias unrelated experiments. Headerless
  journals from older versions resume without the check.

  `attack` searches for worst-case fault placements: for each radius it
  sweeps the local bound t across the protocol's proven threshold (half,
  at, and just past it), seeds each cell from a minimum vertex cut
  between the source and the far side of the torus, and refines it by
  seeded annealing — every accept decision derives from (seed, step), so
  results are byte-identical at any --threads and a --resume replays the
  interrupted tail exactly. Each cell reports the worst placement found
  against the best admissible hand-built strategy; --gate exits nonzero
  unless the search beats that library somewhere, and --out DIR writes
  each placement as a file `run --placement file:PATH` can replay.
  `--placement file:PATH` (run/sweep/audit) loads such a file: one node
  id per line.

  The networked runtime runs the same verified protocols over real
  datagrams. Net options (shared by serve and cluster): --width N
  --height N --r N --metric M --protocol P --t N --instances N
  --rounds N --base-port N --chaos-seed N --patience N --max-ticks N.
  `cluster --transport udp` (the default) spawns one `rbcast serve`
  process per torus node on loopback UDP ports, with per-node JSONL
  journals under --dir; --kill I crashes node I mid-run and restarts it
  from its journal. `--transport loopback` runs the cluster in-process.
  Either way the run's commit digest is checked against the verified
  simulator on the identical configuration; exit 0 iff they match.
  --chaos-seed arms the deterministic fault shim (Gilbert–Elliott burst
  loss, duplication, reordering, delay) on every node.
";

/// Parses a command line (excluding the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown subcommands, unknown
/// flags, or malformed values.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some((sub, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "thresholds" => {
            let mut r_max = 8u32;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--r-max" => r_max = parse_value(&mut it, flag)?,
                    other => return Err(format!("unknown flag for thresholds: {other}")),
                }
            }
            Ok(Command::Thresholds { r_max })
        }
        "run" => Ok(Command::Run(parse_run(rest)?.0)),
        "sweep" => {
            let (spec, t_max, opts) = parse_run(rest)?;
            let t_max = t_max.ok_or("sweep requires --t-max")?;
            if spec.trace.is_some() {
                return Err("sweep traces per task: use --trace-dir DIR, not --trace".to_string());
            }
            Ok(Command::Sweep { spec, t_max, opts })
        }
        "audit" => {
            let (spec, _, _) = parse_run(rest)?;
            let placement = spec.placement.ok_or("audit requires --placement")?;
            Ok(Command::Audit {
                r: spec.r,
                placement,
                metric: spec.metric,
            })
        }
        "attack" => Ok(Command::Attack(crate::cli_attack::parse_attack(rest)?)),
        "serve" => Ok(Command::Serve(crate::cli_net::parse_serve(rest)?)),
        "cluster" => {
            let (spec, opts) = crate::cli_net::parse_cluster(rest)?;
            Ok(Command::Cluster { spec, opts })
        }
        other => Err(format!("unknown subcommand: {other}")),
    }
}

fn parse_value<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let raw = it.next().ok_or(format!("{flag} needs a value"))?;
    raw.parse()
        .map_err(|_| format!("invalid value for {flag}: {raw}"))
}

#[allow(clippy::too_many_lines)]
fn parse_run(args: &[String]) -> Result<(RunSpec, Option<usize>, SweepOpts), String> {
    let mut r = 2u32;
    let mut protocol = "indirect-simplified".to_string();
    let mut t: Option<usize> = None;
    let mut t_max: Option<usize> = None;
    let mut opts = SweepOpts::default();
    let mut metric = Metric::Linf;
    let mut placement_name: Option<String> = None;
    let mut behavior_name = "silent".to_string();
    let mut seed = 0u64;
    let mut prob = 0.1f64;
    let mut repeats = 3u32;
    let mut loss = 0.0f64;
    let mut redundancy = 1u32;
    let mut spoofing = false;
    let mut jam = 0u32;
    let mut early_termination = true;
    let mut trace: Option<PathBuf> = None;
    let mut engine = EngineKind::default();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--r" => r = parse_value(&mut it, flag)?,
            "--protocol" => protocol = parse_value(&mut it, flag)?,
            "--t" => t = Some(parse_value(&mut it, flag)?),
            "--t-max" => t_max = Some(parse_value(&mut it, flag)?),
            "--threads" => opts.threads = Some(parse_value(&mut it, flag)?),
            "--journal" => {
                opts.journal = Some(PathBuf::from(parse_value::<String>(&mut it, flag)?))
            }
            "--resume" => opts.resume = Some(PathBuf::from(parse_value::<String>(&mut it, flag)?)),
            "--retries" => opts.retries = Some(parse_value(&mut it, flag)?),
            "--round-budget" => opts.round_budget = Some(parse_value(&mut it, flag)?),
            "--trace" => trace = Some(PathBuf::from(parse_value::<String>(&mut it, flag)?)),
            "--trace-dir" => {
                opts.trace_dir = Some(PathBuf::from(parse_value::<String>(&mut it, flag)?));
            }
            "--timings" => opts.timings = true,
            "--metric" => {
                let m: String = parse_value(&mut it, flag)?;
                metric = match m.as_str() {
                    "linf" => Metric::Linf,
                    "l2" => Metric::L2,
                    other => return Err(format!("unknown metric: {other}")),
                };
            }
            "--placement" => placement_name = Some(parse_value(&mut it, flag)?),
            "--behavior" => behavior_name = parse_value(&mut it, flag)?,
            "--seed" => seed = parse_value(&mut it, flag)?,
            "--prob" => prob = parse_value(&mut it, flag)?,
            "--repeats" => repeats = parse_value(&mut it, flag)?,
            "--loss" => loss = parse_value(&mut it, flag)?,
            "--redundancy" => redundancy = parse_value(&mut it, flag)?,
            "--spoofing" => spoofing = true,
            "--jam" => jam = parse_value(&mut it, flag)?,
            "--no-early-term" => early_termination = false,
            "--dense" => engine = EngineKind::Dense,
            other => return Err(format!("unknown flag: {other}")),
        }
    }

    // behaviour resolved after the loop so `--seed` order is irrelevant
    let behavior = match behavior_name.as_str() {
        "crash" => FaultKind::CrashStop,
        "silent" => FaultKind::Silent,
        "liar" => FaultKind::Liar,
        "forger" => FaultKind::Forger,
        "spoofer" => FaultKind::Spoofer,
        "mixed" => FaultKind::Mixed { seed },
        other => return Err(format!("unknown behavior: {other}")),
    };

    let protocol = match protocol.as_str() {
        "flood" => ProtocolKind::Flood,
        "persistent-flood" => ProtocolKind::PersistentFlood { repeats },
        "cpa" => ProtocolKind::Cpa,
        "indirect-full" => ProtocolKind::IndirectFull,
        "indirect-simplified" => ProtocolKind::IndirectSimplified,
        other => return Err(format!("unknown protocol: {other}")),
    };

    // The effective budget for placements that need one now.
    let effective_t = t.unwrap_or_else(|| default_t(protocol, r));
    let placement = match placement_name.as_deref() {
        None | Some("none") => None,
        Some("cluster") => Some(Placement::FrontierCluster { t: effective_t }),
        Some("random") => Some(Placement::RandomLocal {
            t: effective_t,
            seed,
            attempts: 60,
        }),
        Some("double-strip") => Some(Placement::DoubleStrip),
        Some("checker-strips") => Some(Placement::CheckerStrips),
        Some("column-strips") => Some(Placement::ColumnStrips),
        Some("bernoulli") => Some(Placement::Bernoulli { p: prob, seed }),
        Some(other) => match other.strip_prefix("file:") {
            Some(path) => Some(load_placement_file(std::path::Path::new(path))?),
            None => return Err(format!("unknown placement: {other}")),
        },
    };

    let mut channel = if loss > 0.0 {
        ChannelConfig::lossy(loss, redundancy, seed)
    } else {
        ChannelConfig::reliable()
    };
    if spoofing {
        channel = channel.with_spoofing();
    }
    if jam > 0 {
        channel = channel.with_jammers(Vec::new(), jam);
    }

    Ok((
        RunSpec {
            r,
            protocol,
            t,
            metric,
            placement,
            behavior,
            channel,
            early_termination,
            trace,
            engine,
        },
        t_max,
        opts,
    ))
}

/// Loads an explicit fault set (`--placement file:PATH`): node ids
/// separated by newlines or commas, as written by `rbcast attack --out`.
fn load_placement_file(path: &std::path::Path) -> Result<Placement, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read placement file {}: {e}", path.display()))?;
    let mut faults = Vec::new();
    for token in text.split_whitespace().flat_map(|w| w.split(',')) {
        if token.is_empty() {
            continue;
        }
        let id: u32 = token
            .parse()
            .map_err(|_| format!("invalid node id in {}: {token}", path.display()))?;
        faults.push(NodeId(id));
    }
    Ok(Placement::Explicit { faults })
}

fn default_t(protocol: ProtocolKind, r: u32) -> usize {
    (match protocol {
        ProtocolKind::Flood | ProtocolKind::PersistentFlood { .. } => thresholds::crash_max_t(r),
        ProtocolKind::Cpa => thresholds::cpa_guaranteed_t(r),
        _ => thresholds::byzantine_max_t(r),
    }) as usize
}

fn build(spec: &RunSpec, t_override: Option<usize>) -> Experiment {
    let mut e = Experiment::new(spec.r, spec.protocol)
        .with_metric(spec.metric)
        .with_fault_kind(spec.behavior)
        .with_channel(spec.channel.clone())
        .with_early_termination(spec.early_termination)
        .with_engine(spec.engine);
    if let Some(t) = t_override.or(spec.t) {
        e = e.with_t(t);
    }
    if let Some(p) = &spec.placement {
        e = e.with_placement(p.clone());
    }
    if let Some(path) = &spec.trace {
        e = e.with_trace_path(path.clone());
    }
    e
}

/// Executes a parsed command, printing results to stdout. Returns the
/// process exit code.
#[must_use]
pub fn execute(cmd: &Command) -> i32 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::Thresholds { r_max } => {
            println!(
                "{:>4} {:>12} {:>12} {:>12} {:>14}",
                "r", "byz t_max", "crash t_max", "cpa ⌊⅔r²⌋", "Koo CPA bound"
            );
            for r in 1..=*r_max {
                println!(
                    "{:>4} {:>12} {:>12} {:>12} {:>14.2}",
                    r,
                    thresholds::byzantine_max_t(r),
                    thresholds::crash_max_t(r),
                    thresholds::cpa_guaranteed_t(r),
                    thresholds::koo_cpa_bound(r),
                );
            }
            0
        }
        Command::Run(spec) => {
            let outcome = build(spec, None).run();
            println!("{outcome}");
            i32::from(!outcome.all_honest_correct())
        }
        Command::Sweep { spec, t_max, opts } => execute_sweep(spec, *t_max, opts),
        Command::Audit {
            r,
            placement,
            metric,
        } => {
            let torus = Torus::for_radius(*r);
            let faults = placement.place(&torus, *r, *metric);
            let bound = local_fault_bound(&torus, *r, *metric, &faults);
            println!(
                "{}: {} faults on {torus}, local bound = {bound}",
                placement.name(),
                faults.len()
            );
            0
        }
        Command::Attack(spec) => crate::cli_attack::execute_attack(spec),
        Command::Serve(spec) => crate::cli_net::execute_serve(spec),
        Command::Cluster { spec, opts } => crate::cli_net::execute_cluster(spec, opts),
    }
}

/// Builds the supervisor policy for a sweep: the environment knobs
/// (`RBCAST_CHAOS`, `RBCAST_RETRIES`, `RBCAST_ROUND_BUDGET`) overridden
/// by the explicit flags, plus journal/resume wiring. `--resume` implies
/// appending new completions to the same file, so repeated resumes of an
/// interrupted sweep converge.
///
/// `header` fingerprints the sweep being executed: a fresh journal is
/// created with it as its first line, and a resume journal carrying a
/// *different* header is refused — its task indices would alias
/// unrelated experiments. Headerless (older) journals resume unchecked.
fn sweep_config(opts: &SweepOpts, header: &JournalHeader) -> Result<SupervisorConfig, String> {
    let mut config = SupervisorConfig::from_env()?;
    if let Some(n) = opts.retries {
        config = config.with_max_attempts(n);
    }
    if opts.round_budget.is_some() {
        config = config.with_round_budget(opts.round_budget);
    }
    if let Some(path) = &opts.resume {
        let prior = Journal::read_header(path)
            .map_err(|e| format!("cannot read resume journal {}: {e}", path.display()))?;
        if let Some(prior) = prior {
            if prior != *header {
                return Err(format!(
                    "resume journal {} records a different sweep \
                     (fingerprint {:#018x}, {} tasks; this sweep is {:#018x}, {} tasks) — \
                     refusing to splice checkpoints across specifications",
                    path.display(),
                    prior.fingerprint,
                    prior.tasks,
                    header.fingerprint,
                    header.tasks,
                ));
            }
        }
        let entries = Journal::load(path)
            .map_err(|e| format!("cannot load resume journal {}: {e}", path.display()))?;
        config = config.resume_from(entries);
    }
    if let Some(path) = opts.journal.as_ref().or(opts.resume.as_ref()) {
        let journal = if opts.resume.is_some() {
            Journal::append_to(path)
        } else {
            Journal::create_with_header(path, header)
        };
        config = config.with_journal(
            journal.map_err(|e| format!("cannot open journal {}: {e}", path.display()))?,
        );
    }
    Ok(config)
}

/// The supervised sweep: one row per `t`, recomputed, resumed, or
/// quarantined in place. Exit codes: 0 — every row completed with all
/// honest nodes correct; 1 — some completed row has wrong or undecided
/// honest nodes; 2 — at least one task was quarantined, or the
/// supervision config itself is malformed.
fn execute_sweep(spec: &RunSpec, t_max: usize, opts: &SweepOpts) -> i32 {
    let ts: Vec<usize> = (spec.t.unwrap_or(0)..=t_max).collect();
    let mut experiments: Vec<Experiment> = ts
        .iter()
        .map(|&t| {
            // re-derive the placement at this t for budgeted kinds
            let mut spec_t = spec.clone();
            if let Some(Placement::FrontierCluster { .. }) = spec_t.placement {
                spec_t.placement = Some(Placement::FrontierCluster { t });
            }
            if let Some(Placement::RandomLocal { seed, attempts, .. }) = spec_t.placement {
                spec_t.placement = Some(Placement::RandomLocal { t, seed, attempts });
            }
            build(&spec_t, Some(t))
        })
        .collect();

    // The fingerprint covers the sweep specification, not where its
    // traces go — computed before trace paths are attached, so a resume
    // may redirect --trace-dir without being refused.
    let header = JournalHeader {
        fingerprint: supervisor::sweep_fingerprint(&experiments),
        tasks: experiments.len(),
    };
    let config = match sweep_config(opts, &header) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if let Some(dir) = &opts.trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create trace dir {}: {e}", dir.display());
            return 2;
        }
        for (i, e) in experiments.iter_mut().enumerate() {
            *e = e
                .clone()
                .with_trace_path(dir.join(format!("task-{i}.jsonl")));
        }
    }

    println!(
        "{:>4} {:>9} {:>7} {:>10} {:>12}",
        "t", "correct", "wrong", "undecided", "broadcasts"
    );
    // Supervised deterministic fan-out: rows print in t order and are
    // byte-identical for every thread count; a quarantined row never
    // withholds the healthy ones.
    let threads = engine::thread_count(opts.threads);
    let report =
        crate::core::supervisor::run_experiments_supervised(&experiments, threads, &config);
    let mut worst = 0;
    for (t, task) in ts.iter().zip(&report.tasks) {
        if let TaskReport::Failed { error, .. } = task {
            println!("{t:>4} (quarantined: {error})");
        } else {
            // Done rows summarise their outcome; Resumed rows reprint
            // the journal's stored summary byte-identically.
            let Some(s) = task.summary() else { continue };
            println!(
                "{:>4} {:>9} {:>7} {:>10} {:>12}",
                t, s.correct, s.wrong, s.undecided, s.messages
            );
            if s.wrong > 0 || s.undecided > 0 {
                worst = 1;
            }
        }
    }
    let quarantined = report.quarantined();
    if !quarantined.is_empty() {
        eprintln!(
            "quarantined {} of {} tasks:",
            quarantined.len(),
            report.tasks.len()
        );
        for (i, error) in &quarantined {
            eprintln!("  t={}: {error}", ts[*i]);
        }
        worst = 2;
    }
    if opts.timings {
        println!();
        println!(
            "{:<24} {:>8} {:>12} {:>10}",
            "phase", "count", "total ms", "mean ms"
        );
        for (name, stat) in obs::timings_snapshot() {
            println!(
                "{:<24} {:>8} {:>12.2} {:>10.3}",
                name,
                stat.count,
                stat.total_ms(),
                stat.mean_ms()
            );
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&argv("help")), Ok(Command::Help));
    }

    #[test]
    fn thresholds_default_and_custom() {
        assert_eq!(
            parse(&argv("thresholds")),
            Ok(Command::Thresholds { r_max: 8 })
        );
        assert_eq!(
            parse(&argv("thresholds --r-max 3")),
            Ok(Command::Thresholds { r_max: 3 })
        );
    }

    #[test]
    fn run_defaults() {
        let Command::Run(spec) = parse(&argv("run")).unwrap() else {
            panic!("not a run");
        };
        assert_eq!(spec.r, 2);
        assert_eq!(spec.protocol, ProtocolKind::IndirectSimplified);
        assert_eq!(spec.placement, None);
        assert_eq!(spec.metric, Metric::Linf);
    }

    #[test]
    fn run_full_flags() {
        let Command::Run(spec) = parse(&argv(
            "run --protocol cpa --r 3 --t 5 --metric l2 --placement cluster --behavior liar",
        ))
        .unwrap() else {
            panic!("not a run");
        };
        assert_eq!(spec.protocol, ProtocolKind::Cpa);
        assert_eq!(spec.r, 3);
        assert_eq!(spec.t, Some(5));
        assert_eq!(spec.metric, Metric::L2);
        assert_eq!(spec.placement, Some(Placement::FrontierCluster { t: 5 }));
        assert_eq!(spec.behavior, FaultKind::Liar);
    }

    #[test]
    fn channel_flags() {
        let Command::Run(spec) = parse(&argv(
            "run --loss 0.3 --redundancy 4 --spoofing --jam 7 --seed 9",
        ))
        .unwrap() else {
            panic!("not a run");
        };
        assert!((spec.channel.loss - 0.3).abs() < 1e-12);
        assert_eq!(spec.channel.redundancy, 4);
        assert!(spec.channel.spoofing);
        assert_eq!(spec.channel.jam_budget, 7);
        assert_eq!(spec.channel.seed, 9);
    }

    #[test]
    fn early_termination_defaults_on_and_flag_disables_it() {
        let Command::Run(spec) = parse(&argv("run --r 2")).unwrap() else {
            panic!("not a run");
        };
        assert!(spec.early_termination);
        let Command::Run(spec) = parse(&argv("run --r 2 --no-early-term")).unwrap() else {
            panic!("not a run");
        };
        assert!(!spec.early_termination);
    }

    #[test]
    fn sweep_requires_t_max() {
        assert!(parse(&argv("sweep")).is_err());
        let Command::Sweep { t_max, .. } =
            parse(&argv("sweep --t-max 4 --placement cluster")).unwrap()
        else {
            panic!("not a sweep");
        };
        assert_eq!(t_max, 4);
    }

    #[test]
    fn sweep_parses_threads() {
        let Command::Sweep { opts, .. } =
            parse(&argv("sweep --t-max 2 --threads 3 --placement cluster")).unwrap()
        else {
            panic!("not a sweep");
        };
        assert_eq!(opts.threads, Some(3));
    }

    #[test]
    fn sweep_parses_supervision_flags() {
        let Command::Sweep { opts, .. } = parse(&argv(
            "sweep --t-max 2 --journal a.jsonl --resume b.jsonl --retries 3 --round-budget 40",
        ))
        .unwrap() else {
            panic!("not a sweep");
        };
        assert_eq!(opts.journal, Some(PathBuf::from("a.jsonl")));
        assert_eq!(opts.resume, Some(PathBuf::from("b.jsonl")));
        assert_eq!(opts.retries, Some(3));
        assert_eq!(opts.round_budget, Some(40));
        assert!(parse(&argv("sweep --t-max 2 --retries many")).is_err());
        assert!(parse(&argv("sweep --t-max 2 --round-budget -1")).is_err());
    }

    #[test]
    fn execute_sweep_is_thread_count_invariant() {
        // the printed rows come from engine outcomes collected by input
        // index: the exit code (and rows) match the serial sweep
        let base = "sweep --protocol flood --r 1 --t 0 --t-max 2 --placement cluster \
                    --behavior crash";
        let serial = parse(&argv(&format!("{base} --threads 1"))).unwrap();
        let parallel = parse(&argv(&format!("{base} --threads 4"))).unwrap();
        assert_eq!(execute(&serial), execute(&parallel));
    }

    #[test]
    fn audit_requires_placement() {
        assert!(parse(&argv("audit")).is_err());
        let Command::Audit { placement, .. } =
            parse(&argv("audit --placement double-strip --r 2")).unwrap()
        else {
            panic!("not an audit");
        };
        assert_eq!(placement, Placement::DoubleStrip);
    }

    #[test]
    fn placement_file_loads_explicit_faults() {
        let path = std::env::temp_dir().join("rbcast_cli_placement.txt");
        std::fs::write(&path, "3\n7\n11,12\n").unwrap();
        let Command::Run(spec) =
            parse(&argv(&format!("run --placement file:{}", path.display()))).unwrap()
        else {
            panic!("not a run");
        };
        assert_eq!(
            spec.placement,
            Some(Placement::Explicit {
                faults: vec![NodeId(3), NodeId(7), NodeId(11), NodeId(12)],
            })
        );
        std::fs::write(&path, "3\nseven\n").unwrap();
        assert!(parse(&argv(&format!("run --placement file:{}", path.display()))).is_err());
        let _ = std::fs::remove_file(&path);
        assert!(parse(&argv("run --placement file:/no/such/file")).is_err());
    }

    #[test]
    fn attack_subcommand_parses() {
        let Command::Attack(spec) = parse(&argv("attack --seed 7 --steps 10 --gate")).unwrap()
        else {
            panic!("not an attack");
        };
        assert_eq!(spec.config.seed, 7);
        assert_eq!(spec.config.steps, 10);
        assert!(spec.gate);
        assert!(parse(&argv("attack --bogus")).is_err());
    }

    #[test]
    fn unknown_inputs_error() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --protocol warp")).is_err());
        assert!(parse(&argv("run --metric l7")).is_err());
        assert!(parse(&argv("run --behavior angelic")).is_err());
        assert!(parse(&argv("run --placement lattice")).is_err());
        assert!(parse(&argv("run --r")).is_err());
        assert!(parse(&argv("run --r NaN")).is_err());
    }

    #[test]
    fn execute_help_and_thresholds() {
        assert_eq!(execute(&Command::Help), 0);
        assert_eq!(execute(&Command::Thresholds { r_max: 2 }), 0);
    }

    #[test]
    fn execute_small_run() {
        let Command::Run(spec) = parse(&argv("run --protocol flood --r 1 --t 0")).unwrap() else {
            panic!()
        };
        assert_eq!(execute(&Command::Run(spec)), 0);
    }

    #[test]
    fn execute_sweep_over_flood() {
        let cmd = parse(&argv(
            "sweep --protocol flood --r 1 --t 0 --t-max 2 --placement cluster --behavior crash",
        ))
        .unwrap();
        // all t ≤ crash_max are coverable by the cluster: exit 0
        assert_eq!(execute(&cmd), 0);
    }

    #[test]
    fn execute_run_reports_failure_exit_code() {
        // double strips at the crash bound strand nodes: nonzero exit
        let cmd = parse(&argv(
            "run --protocol flood --r 1 --placement double-strip --behavior crash",
        ))
        .unwrap();
        assert_eq!(execute(&cmd), 1);
    }

    #[test]
    fn execute_audit() {
        let cmd = parse(&argv("audit --placement checker-strips --r 1")).unwrap();
        assert_eq!(execute(&cmd), 0);
    }

    #[test]
    fn execute_sweep_quarantines_on_an_impossible_round_budget() {
        // A one-round budget trips the watchdog on every t: each task is
        // quarantined (after the default retry) and the sweep exits 2.
        let cmd = parse(&argv(
            "sweep --protocol flood --r 1 --t 0 --t-max 1 --placement cluster \
             --behavior crash --round-budget 1 --threads 1",
        ))
        .unwrap();
        assert_eq!(execute(&cmd), 2);
    }

    #[test]
    fn execute_sweep_journals_and_resumes_without_recomputing() {
        use crate::core::supervisor::Journal;

        let path = std::env::temp_dir().join("rbcast_cli_sweep_journal.jsonl");
        let _ = std::fs::remove_file(&path);
        let base = format!(
            "sweep --protocol flood --r 1 --t 0 --t-max 2 --placement cluster \
             --behavior crash --threads 1 --journal {}",
            path.display()
        );
        assert_eq!(execute(&parse(&argv(&base)).unwrap()), 0);
        let entries = Journal::load(&path).unwrap();
        assert_eq!(entries.len(), 3);
        assert!(entries.values().all(|e| e.ok));

        // Resuming reprints every row from the journal; nothing is
        // recomputed, so nothing new is appended either.
        let before = std::fs::read_to_string(&path).unwrap();
        let resume = format!(
            "sweep --protocol flood --r 1 --t 0 --t-max 2 --placement cluster \
             --behavior crash --threads 1 --resume {}",
            path.display()
        );
        assert_eq!(execute(&parse(&argv(&resume)).unwrap()), 0);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_flags_parse() {
        let Command::Run(spec) = parse(&argv("run --trace out.jsonl")).unwrap() else {
            panic!("not a run");
        };
        assert_eq!(spec.trace, Some(PathBuf::from("out.jsonl")));
        let Command::Sweep { opts, .. } = parse(&argv(
            "sweep --t-max 2 --trace-dir traces --timings --placement cluster",
        ))
        .unwrap() else {
            panic!("not a sweep");
        };
        assert_eq!(opts.trace_dir, Some(PathBuf::from("traces")));
        assert!(opts.timings);
        // sweep rejects the single-file flag: tasks would clobber it
        assert!(parse(&argv("sweep --t-max 2 --trace out.jsonl")).is_err());
    }

    #[test]
    fn execute_run_with_trace_writes_wellformed_jsonl() {
        let path = std::env::temp_dir().join("rbcast_cli_run_trace.jsonl");
        let _ = std::fs::remove_file(&path);
        let cmd = parse(&argv(&format!(
            "run --protocol flood --r 1 --t 0 --trace {}",
            path.display()
        )))
        .unwrap();
        assert_eq!(execute(&cmd), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty());
        // Every line is one JSON object with an "ev" tag, and the
        // stream re-derives a delivery-trace hash.
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"ev\":\""), "{line}");
        }
        assert!(obs::replay_hash(&text).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn execute_sweep_trace_dir_writes_one_stream_per_task() {
        let dir = std::env::temp_dir().join("rbcast_cli_sweep_traces");
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = parse(&argv(&format!(
            "sweep --protocol flood --r 1 --t 0 --t-max 2 --placement cluster \
             --behavior crash --threads 2 --trace-dir {}",
            dir.display()
        )))
        .unwrap();
        assert_eq!(execute(&cmd), 0);
        for i in 0..3 {
            let text = std::fs::read_to_string(dir.join(format!("task-{i}.jsonl")))
                .unwrap_or_else(|e| panic!("task-{i}.jsonl: {e}"));
            assert!(obs::replay_hash(&text).is_ok(), "task {i}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn execute_sweep_refuses_a_resume_journal_from_another_sweep() {
        let path = std::env::temp_dir().join("rbcast_cli_sweep_mismatch.jsonl");
        let _ = std::fs::remove_file(&path);
        let journal = format!(
            "sweep --protocol flood --r 1 --t 0 --t-max 2 --placement cluster \
             --behavior crash --threads 1 --journal {}",
            path.display()
        );
        assert_eq!(execute(&parse(&argv(&journal)).unwrap()), 0);
        // Same journal, different sweep spec (t-max 1 → 2 tasks): the
        // header cross-check must refuse with exit 2.
        let resume = format!(
            "sweep --protocol flood --r 1 --t 0 --t-max 1 --placement cluster \
             --behavior crash --threads 1 --resume {}",
            path.display()
        );
        assert_eq!(execute(&parse(&argv(&resume)).unwrap()), 2);
        // The matching spec still resumes cleanly.
        let matching = format!(
            "sweep --protocol flood --r 1 --t 0 --t-max 2 --placement cluster \
             --behavior crash --threads 1 --resume {}",
            path.display()
        );
        assert_eq!(execute(&parse(&argv(&matching)).unwrap()), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn execute_sweep_resume_converges_on_a_partial_journal() {
        use crate::core::supervisor::Journal;

        // Seed the journal with only t=1 completed: the resume run must
        // compute t=0 and t=2, append them, and end fully healthy.
        let path = std::env::temp_dir().join("rbcast_cli_sweep_partial.jsonl");
        let _ = std::fs::remove_file(&path);
        std::fs::write(
            &path,
            "{\"task\":1,\"status\":\"ok\",\"attempts\":1,\
             \"correct\":7,\"wrong\":0,\"undecided\":0,\"messages\":9}\n",
        )
        .unwrap();
        let resume = format!(
            "sweep --protocol flood --r 1 --t 0 --t-max 2 --placement cluster \
             --behavior crash --threads 1 --resume {}",
            path.display()
        );
        assert_eq!(execute(&parse(&argv(&resume)).unwrap()), 0);
        let entries = Journal::load(&path).unwrap();
        assert_eq!(entries.len(), 3);
        assert!(entries.values().all(|e| e.ok));
        // the seeded row was trusted verbatim, not recomputed
        assert_eq!(entries[&1].summary.unwrap().correct, 7);
        let _ = std::fs::remove_file(&path);
    }
}
