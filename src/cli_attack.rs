//! The `rbcast attack` subcommand: seeded adversary search for
//! worst-case fault placements (see `rbcast_core::attack`).

use crate::core::attack::{run_attack, AttackConfig, AttackReport};
use crate::core::{obs, FaultKind, ProtocolKind};
use crate::grid::Metric;
use std::path::PathBuf;

/// Parsed `rbcast attack` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSpec {
    /// The search configuration handed to the driver.
    pub config: AttackConfig,
    /// Fail (exit 1) unless the search beats the best hand-built
    /// strategy on at least one cell (`--gate`).
    pub gate: bool,
    /// Write one replayable placement file per cell (`--out DIR`).
    pub out_dir: Option<PathBuf>,
    /// Print the per-phase wall-clock table after the search
    /// (`--timings`; diagnostics only, never part of gated output).
    pub timings: bool,
}

/// Parses the arguments of `rbcast attack`.
///
/// # Errors
///
/// Human-readable messages for unknown flags or malformed values.
pub fn parse_attack(args: &[String]) -> Result<AttackSpec, String> {
    let mut config = AttackConfig::new(0);
    let mut rs: Vec<u32> = Vec::new();
    let mut gate = false;
    let mut out_dir = None;
    let mut timings = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--seed" => config.seed = parse_num(&value(flag)?, flag)?,
            "--steps" => config.steps = parse_num(&value(flag)?, flag)?,
            "--threads" => config.threads = parse_num(&value(flag)?, flag)?,
            "--checkpoint-every" => config.checkpoint_every = parse_num(&value(flag)?, flag)?,
            "--r" => rs.push(parse_num(&value(flag)?, flag)?),
            "--journal" => config.journal = Some(PathBuf::from(value(flag)?)),
            "--resume" => {
                config.journal = Some(PathBuf::from(value(flag)?));
                config.resume = true;
            }
            "--gate" => gate = true,
            "--timings" => timings = true,
            "--out" => out_dir = Some(PathBuf::from(value(flag)?)),
            "--protocol" => {
                config.protocol = match value(flag)?.as_str() {
                    "flood" => ProtocolKind::Flood,
                    "cpa" => ProtocolKind::Cpa,
                    "indirect-full" => ProtocolKind::IndirectFull,
                    "indirect-simplified" => ProtocolKind::IndirectSimplified,
                    other => return Err(format!("unknown protocol: {other}")),
                };
            }
            "--behavior" => {
                config.fault_kind = match value(flag)?.as_str() {
                    "crash" => FaultKind::CrashStop,
                    "silent" => FaultKind::Silent,
                    "liar" => FaultKind::Liar,
                    "forger" => FaultKind::Forger,
                    other => return Err(format!("unknown behavior: {other}")),
                };
            }
            "--metric" => {
                config.metric = match value(flag)?.as_str() {
                    "linf" => Metric::Linf,
                    "l2" => Metric::L2,
                    other => return Err(format!("unknown metric: {other}")),
                };
            }
            other => return Err(format!("unknown flag for attack: {other}")),
        }
    }
    if !rs.is_empty() {
        config.rs = rs;
    }
    Ok(AttackSpec {
        config,
        gate,
        out_dir,
        timings,
    })
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("invalid value for {flag}: {raw}"))
}

fn ids_csv(ids: &[crate::grid::NodeId]) -> String {
    let mut out = String::new();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.0.to_string());
    }
    out
}

/// Prints the margin-to-threshold table for a finished search.
fn print_report(spec: &AttackSpec, report: &AttackReport) {
    let cfg = &spec.config;
    println!(
        "attack: protocol {}, behavior {:?}, metric {:?}, seed {}, steps {} per cell",
        cfg.protocol.name(),
        cfg.fault_kind,
        cfg.metric,
        cfg.seed,
        cfg.steps
    );
    for cell in &report.cells {
        let margin = cell.cell.t as i64 - cell.cell.threshold as i64;
        let verdict = if cell.beats_baseline() {
            "BEATS"
        } else if cell.found_score == cell.baseline_score {
            "ties"
        } else {
            "behind"
        };
        println!(
            "  r={} t={} thr={} margin={margin:+} | found ({} faults): {} | best hand-built ({}): {} | {verdict}",
            cell.cell.r,
            cell.cell.t,
            cell.cell.threshold,
            cell.found.len(),
            cell.found_score,
            cell.baseline_name,
            cell.baseline_score,
        );
        println!(
            "    placement: {} (evaluations {}, accepted {})",
            ids_csv(&cell.found),
            cell.evaluations,
            cell.accepted
        );
    }
}

/// Runs a parsed attack. Exit codes: 0 — search completed (and, with
/// `--gate`, beat the hand-built library); 1 — `--gate` set and no cell
/// beat its baseline; 2 — the search itself failed.
#[must_use]
pub fn execute_attack(spec: &AttackSpec) -> i32 {
    let report = match run_attack(&spec.config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    print_report(spec, &report);
    if let Some(dir) = &spec.out_dir {
        if let Err(e) = write_placements(dir, &report) {
            eprintln!("error: cannot write placements to {}: {e}", dir.display());
            return 2;
        }
        println!("placements written to {}", dir.display());
    }
    let gate_passed = report.gate_passed();
    if spec.gate {
        println!("gate: {}", if gate_passed { "PASS" } else { "FAIL" });
        return i32::from(!gate_passed);
    }
    if spec.timings {
        println!();
        for (name, stat) in obs::timings_snapshot() {
            if name.starts_with("attack/") {
                println!(
                    "{:<24} {:>8} {:>12.2} {:>10.3}",
                    name,
                    stat.count,
                    stat.total_ms(),
                    stat.mean_ms()
                );
            }
        }
    }
    0
}

/// Writes each cell's found placement as `attack-r<r>-t<t>.txt` (one
/// node id per line) — the format `--placement file:PATH` replays.
fn write_placements(dir: &std::path::Path, report: &AttackReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for cell in &report.cells {
        let path = dir.join(format!("attack-r{}-t{}.txt", cell.cell.r, cell.cell.t));
        let mut body = String::new();
        for id in &cell.found {
            body.push_str(&id.0.to_string());
            body.push('\n');
        }
        std::fs::write(path, body)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_defaults_and_flags() {
        let spec = parse_attack(&argv("--seed 9 --steps 40 --r 1 --r 2 --gate")).unwrap();
        assert_eq!(spec.config.seed, 9);
        assert_eq!(spec.config.steps, 40);
        assert_eq!(spec.config.rs, vec![1, 2]);
        assert!(spec.gate);
        assert!(!spec.config.resume);
    }

    #[test]
    fn resume_implies_journal() {
        let spec = parse_attack(&argv("--resume search.jsonl")).unwrap();
        assert!(spec.config.resume);
        assert_eq!(spec.config.journal, Some(PathBuf::from("search.jsonl")));
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(parse_attack(&argv("--bogus 1")).is_err());
        assert!(parse_attack(&argv("--seed")).is_err());
        assert!(parse_attack(&argv("--protocol nonsense")).is_err());
    }

    #[test]
    fn tiny_attack_executes_and_is_deterministic() {
        let mut spec = parse_attack(&argv("--seed 5 --steps 4 --r 1")).unwrap();
        spec.config.checkpoint_every = 0;
        assert_eq!(execute_attack(&spec), 0);
        let a = run_attack(&spec.config).expect("attack runs");
        let b = run_attack(&spec.config).expect("attack runs");
        assert_eq!(a, b);
    }
}
