//! CLI surface of the networked runtime: `rbcast serve` (one UDP node)
//! and `rbcast cluster` (an N-node torus as local processes, or
//! in-process over loopback).
//!
//! `cluster --transport udp` spawns one `rbcast serve` child per node
//! via `std::process::Command` (no threads — the supervisor taxonomy's
//! quarantine semantics extend naturally to whole processes), waits for
//! their JSON reports, aggregates decisions, and checks the commit
//! digest against the sim oracle. `--kill I` injects a crash: child `I`
//! is killed mid-run and respawned with the same journal, exercising
//! the epoch-bump recovery path end to end over real sockets.

use rbcast_grid::Metric;
use rbcast_net::{
    ChaosConfig, ClusterSpec, Datagram, FileJournal, LoopbackCluster, MemJournal, NetJournal,
    NetProtocol, NodeReport, NodeRuntime, RuntimeConfig, UdpTransport,
};
use rbcast_sim::driver::InstanceId;
use rbcast_sim::Round;
use std::path::PathBuf;
use std::sync::Arc;

/// One node's serve invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// This node's id.
    pub node: u32,
    /// The shared run configuration.
    pub cluster: NetSpec,
    /// Journal path (enables crash recovery). `None` = in-memory.
    pub journal: Option<PathBuf>,
    /// Where to write the final JSON report (`None` = stdout).
    pub out: Option<PathBuf>,
}

/// The flags shared by `serve` and `cluster` — everything a node needs
/// to agree on.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSpec {
    /// Torus width.
    pub width: u32,
    /// Torus height.
    pub height: u32,
    /// Transmission radius.
    pub radius: u32,
    /// Neighborhood metric.
    pub metric: Metric,
    /// Protocol to run.
    pub protocol: NetProtocol,
    /// Fault budget `t`.
    pub t: usize,
    /// Concurrent broadcast instances.
    pub instances: u32,
    /// Lockstep rounds.
    pub rounds: Round,
    /// UDP base port (node `i` binds `base_port + i`).
    pub base_port: u16,
    /// Chaos seed (`None` = no chaos shim).
    pub chaos_seed: Option<u64>,
    /// Barrier patience in ticks before suspecting a silent peer.
    pub patience: u64,
    /// Pump-loop budget in ticks.
    pub max_ticks: u64,
}

impl NetSpec {
    fn to_cluster_spec(&self) -> ClusterSpec {
        ClusterSpec {
            width: self.width,
            height: self.height,
            radius: self.radius,
            metric: self.metric,
            protocol: self.protocol,
            t: self.t,
            instances: self.instances,
            rounds: self.rounds,
        }
    }

    fn runtime_config(&self) -> RuntimeConfig {
        RuntimeConfig {
            rounds: self.rounds,
            patience: self.patience,
            ..RuntimeConfig::default()
        }
    }

    fn chaos(&self) -> Option<ChaosConfig> {
        // The smoke profile's loss is bursty but recoverable; the seed
        // is the only knob the CLI exposes.
        self.chaos_seed.map(ChaosConfig::smoke)
    }
}

impl Default for NetSpec {
    fn default() -> Self {
        NetSpec {
            width: 3,
            height: 3,
            radius: 1,
            metric: Metric::Linf,
            protocol: NetProtocol::Cpa,
            t: 1,
            instances: 4,
            rounds: 16,
            base_port: 47_000,
            chaos_seed: None,
            patience: 200_000,
            max_ticks: 20_000_000,
        }
    }
}

/// `cluster`-only options.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOpts {
    /// `udp` (child processes over sockets) or `loopback` (in-process).
    pub udp: bool,
    /// Node to kill and restart mid-run, if any.
    pub kill: Option<u32>,
    /// Scratch directory for journals and reports (udp mode).
    pub dir: Option<PathBuf>,
}

impl Default for ClusterOpts {
    fn default() -> Self {
        ClusterOpts {
            udp: true,
            kill: None,
            dir: None,
        }
    }
}

/// The next argument after a flag that requires a value.
fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// Parses the shared flags; unrecognized flags are delegated to `extra`
/// which returns true when it consumed the flag.
fn parse_net_flags(
    args: &[String],
    spec: &mut NetSpec,
    mut extra: impl FnMut(&str, &mut std::slice::Iter<'_, String>) -> Result<bool, String>,
) -> Result<(), String> {
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--width" => spec.width = parse_str(next_value(&mut it, flag)?, flag)?,
            "--height" => spec.height = parse_str(next_value(&mut it, flag)?, flag)?,
            "--r" => spec.radius = parse_str(next_value(&mut it, flag)?, flag)?,
            "--metric" => {
                let raw = next_value(&mut it, flag)?;
                spec.metric = match raw.as_str() {
                    "linf" => Metric::Linf,
                    "l2" => Metric::L2,
                    other => return Err(format!("unknown metric: {other}")),
                };
            }
            "--protocol" => {
                let raw = next_value(&mut it, flag)?;
                spec.protocol = NetProtocol::parse(raw)
                    .ok_or_else(|| format!("unknown protocol for the net runtime: {raw}"))?;
            }
            "--t" => spec.t = parse_str(next_value(&mut it, flag)?, flag)?,
            "--instances" => spec.instances = parse_str(next_value(&mut it, flag)?, flag)?,
            "--rounds" => spec.rounds = parse_str(next_value(&mut it, flag)?, flag)?,
            "--base-port" => spec.base_port = parse_str(next_value(&mut it, flag)?, flag)?,
            "--chaos-seed" => {
                spec.chaos_seed = Some(parse_str(next_value(&mut it, flag)?, flag)?);
            }
            "--patience" => spec.patience = parse_str(next_value(&mut it, flag)?, flag)?,
            "--max-ticks" => spec.max_ticks = parse_str(next_value(&mut it, flag)?, flag)?,
            other => {
                if !extra(other, &mut it)? {
                    return Err(format!("unknown flag: {other}"));
                }
            }
        }
    }
    Ok(())
}

fn parse_str<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("invalid value for {flag}: {raw}"))
}

/// Parses `rbcast serve` flags.
pub fn parse_serve(args: &[String]) -> Result<ServeSpec, String> {
    let mut spec = NetSpec::default();
    let mut node: Option<u32> = None;
    let mut journal: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    parse_net_flags(args, &mut spec, |flag, it| match flag {
        "--node" => {
            let raw = it.next().ok_or("--node needs a value")?;
            node = Some(parse_str(raw, "--node")?);
            Ok(true)
        }
        "--journal" => {
            let raw = it.next().ok_or("--journal needs a value")?;
            journal = Some(PathBuf::from(raw));
            Ok(true)
        }
        "--out" => {
            let raw = it.next().ok_or("--out needs a value")?;
            out = Some(PathBuf::from(raw));
            Ok(true)
        }
        _ => Ok(false),
    })?;
    Ok(ServeSpec {
        node: node.ok_or("serve requires --node")?,
        cluster: spec,
        journal,
        out,
    })
}

/// Parses `rbcast cluster` flags.
pub fn parse_cluster(args: &[String]) -> Result<(NetSpec, ClusterOpts), String> {
    let mut spec = NetSpec::default();
    let mut opts = ClusterOpts::default();
    parse_net_flags(args, &mut spec, |flag, it| match flag {
        "--transport" => {
            let raw = it.next().ok_or("--transport needs a value")?;
            opts.udp = match raw.as_str() {
                "udp" => true,
                "loopback" => false,
                other => return Err(format!("unknown transport: {other}")),
            };
            Ok(true)
        }
        "--kill" => {
            let raw = it.next().ok_or("--kill needs a value")?;
            opts.kill = Some(parse_str(raw, "--kill")?);
            Ok(true)
        }
        "--dir" => {
            let raw = it.next().ok_or("--dir needs a value")?;
            opts.dir = Some(PathBuf::from(raw));
            Ok(true)
        }
        _ => Ok(false),
    })?;
    Ok((spec, opts))
}

// ---------------------------------------------------------------------
// Report serialization (strict machine JSON, hand-rolled like the
// journal's — the parent parses exactly what the child writes)
// ---------------------------------------------------------------------

fn encode_report(report: &NodeReport) -> String {
    let mut decisions = String::new();
    for (i, (inst, value, round)) in report.decisions.iter().enumerate() {
        if i > 0 {
            decisions.push(',');
        }
        decisions.push_str(&format!(
            "{{\"o\":{},\"s\":{},\"v\":{},\"r\":{}}}",
            inst.origin.0,
            inst.seq,
            u8::from(*value),
            round
        ));
    }
    let suspects = report
        .suspects
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"node\":{},\"epoch\":{},\"rounds\":{},\"healthy\":{},\"suspects\":[{}],\"retransmits\":{},\"decisions\":[{}]}}",
        report.node.0,
        report.epoch,
        report.rounds_closed,
        report.healthy(),
        suspects,
        report.link_totals.retransmits,
        decisions
    )
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Decisions parsed out of one child report line, as oracle tuples.
fn decode_report_decisions(
    line: &str,
) -> Option<Vec<(InstanceId, rbcast_grid::NodeId, bool, Round)>> {
    let node = rbcast_grid::NodeId(u32::try_from(field_u64(line, "node")?).ok()?);
    let start = line.find("\"decisions\":[")? + "\"decisions\":[".len();
    let end = line[start..].find(']')? + start;
    let body = &line[start..end];
    let mut out = Vec::new();
    if body.is_empty() {
        return Some(out);
    }
    for entry in body.split("},{") {
        let origin = u32::try_from(field_u64(entry, "o")?).ok()?;
        let seq = u32::try_from(field_u64(entry, "s")?).ok()?;
        let value = field_u64(entry, "v")? == 1;
        let round = u32::try_from(field_u64(entry, "r")?).ok()?;
        out.push((
            InstanceId {
                origin: rbcast_grid::NodeId(origin),
                seq,
            },
            node,
            value,
            round,
        ));
    }
    Some(out)
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Runs one UDP node to completion. Exit code 0 on a finished run.
#[must_use]
pub fn execute_serve(spec: &ServeSpec) -> i32 {
    let cluster = spec.cluster.to_cluster_spec();
    let arena = cluster.arena();
    if u64::from(spec.node) >= arena.len() as u64 {
        eprintln!(
            "error: node {} outside a {} node torus",
            spec.node,
            arena.len()
        );
        return 2;
    }
    let transport = match UdpTransport::bind(spec.node, spec.cluster.base_port) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: bind failed for node {}: {e}", spec.node);
            return 2;
        }
    };
    let transport: Box<dyn Datagram> = match spec.cluster.chaos() {
        Some(mut cfg) => {
            cfg.seed ^= u64::from(spec.node) << 17;
            Box::new(rbcast_net::ChaosTransport::new(spec.node, transport, cfg))
        }
        None => Box::new(transport),
    };
    let journal: Box<dyn NetJournal> = match &spec.journal {
        Some(path) => match FileJournal::open(path) {
            Ok(j) => Box::new(j),
            Err(e) => {
                eprintln!("error: journal open failed: {e}");
                return 2;
            }
        },
        None => Box::new(MemJournal::new()),
    };
    let mut rt = match NodeRuntime::open(
        Arc::clone(&arena),
        rbcast_grid::NodeId(spec.node),
        &cluster.instance_ids(),
        &mut |inst| cluster.process_for(inst),
        transport,
        journal,
        spec.cluster.runtime_config(),
    ) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("error: journal replay failed: {e}");
            return 2;
        }
    };
    let mut finished_at: Option<u64> = None;
    let mut ticks: u64 = 0;
    while ticks < spec.cluster.max_ticks {
        ticks += 1;
        let finished = rt.pump();
        if finished && finished_at.is_none() {
            finished_at = Some(ticks);
        }
        // Keep serving retransmissions after finishing so slower peers
        // are not stranded; leave once drained (plus a grace window for
        // straggling duplicate traffic). The linger is bounded: a peer
        // that exited before acking our last frames would otherwise
        // keep `quiesced()` false forever — our own decisions are final
        // at this point, so a hard cap is safe.
        if let Some(done) = finished_at {
            let idle = ticks.saturating_sub(done);
            if (rt.quiesced() && idle > 2_000) || idle > 30_000 {
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    let report = rt.report();
    let line = encode_report(&report);
    match &spec.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{line}\n")) {
                eprintln!("error: writing report: {e}");
                return 2;
            }
        }
        None => println!("{line}"),
    }
    i32::from(finished_at.is_none())
}

/// Runs a whole cluster (UDP child processes or in-process loopback),
/// checks the digest against the sim oracle, prints the summary.
#[must_use]
pub fn execute_cluster(spec: &NetSpec, opts: &ClusterOpts) -> i32 {
    let cluster_spec = spec.to_cluster_spec();
    let oracle = cluster_spec.sim_oracle();
    let n = cluster_spec.arena().len();
    let watch = rbcast_core::obs::Stopwatch::start();
    let outcome = if opts.udp {
        run_udp_cluster(spec, opts, n)
    } else {
        run_loopback_cluster(spec, opts)
    };
    let elapsed_ms = watch.elapsed_ms();
    let (decisions, degraded) = match outcome {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            return 2;
        }
    };
    let digest = rbcast_sim::driver::commit_digest(&decisions);
    let pairs = (n as u64) * u64::from(spec.instances);
    let rate = decisions.len() as f64 / pairs as f64;
    let oracle_rate = oracle.decisions.len() as f64 / pairs as f64;
    let secs = elapsed_ms / 1_000.0;
    let bps = if secs > 0.0 {
        f64::from(spec.instances) / secs
    } else {
        0.0
    };
    println!(
        "cluster: {}x{} r={} {} | {} instances x {} rounds | transport={}{}",
        spec.width,
        spec.height,
        spec.radius,
        spec.protocol.name(),
        spec.instances,
        spec.rounds,
        if opts.udp { "udp" } else { "loopback" },
        match opts.kill {
            Some(v) => format!(" | kill+restart node {v}"),
            None => String::new(),
        },
    );
    println!(
        "commit rate: {rate:.4} (oracle {oracle_rate:.4}) | digest {digest:#018x} (oracle {:#018x})",
        oracle.digest
    );
    println!(
        "throughput: {bps:.1} broadcasts/sec ({} commits in {elapsed_ms:.0} ms){}",
        decisions.len(),
        if degraded { " | DEGRADED" } else { "" },
    );
    if digest == oracle.digest {
        println!("parity: MATCH");
        0
    } else {
        println!("parity: MISMATCH");
        1
    }
}

type ClusterDecisions = Vec<(InstanceId, rbcast_grid::NodeId, bool, Round)>;

fn run_loopback_cluster(
    spec: &NetSpec,
    opts: &ClusterOpts,
) -> Result<(ClusterDecisions, bool), String> {
    let mut cluster =
        LoopbackCluster::new(spec.to_cluster_spec(), spec.runtime_config(), spec.chaos());
    if let Some(victim) = opts.kill {
        for _ in 0..20 {
            if cluster.step() {
                break;
            }
        }
        cluster.kill(victim);
        for _ in 0..50 {
            cluster.step();
        }
        if !cluster.restart(victim) {
            eprintln!("node {victim}: journal replay failed; node stays quarantined");
        }
    }
    if !cluster.run(spec.max_ticks) {
        return Err("loopback cluster did not finish within --max-ticks".into());
    }
    let report = cluster.report();
    for (node, why) in &report.quarantined {
        eprintln!("quarantined node {node}: {why}");
    }
    let degraded = report.nodes.iter().any(|nr| !nr.healthy()) || !report.quarantined.is_empty();
    Ok((report.decisions, degraded))
}

fn run_udp_cluster(
    spec: &NetSpec,
    opts: &ClusterOpts,
    n: usize,
) -> Result<(ClusterDecisions, bool), String> {
    let dir = match &opts.dir {
        Some(d) => d.clone(),
        None => std::env::temp_dir().join(format!("rbcast-cluster-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let exe = std::env::current_exe().map_err(|e| format!("locating rbcast binary: {e}"))?;

    let spawn = |node: u32| -> Result<std::process::Child, String> {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("serve")
            .arg("--node")
            .arg(node.to_string())
            .arg("--journal")
            .arg(dir.join(format!("node{node}.jsonl")))
            .arg("--out")
            .arg(dir.join(format!("node{node}.out.json")));
        push_shared_flags(&mut cmd, spec);
        cmd.stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit());
        cmd.spawn()
            .map_err(|e| format!("spawning node {node}: {e}"))
    };

    let mut children: Vec<std::process::Child> = Vec::with_capacity(n);
    for node in 0..n as u32 {
        children.push(spawn(node)?);
    }

    if let Some(victim) = opts.kill {
        let v = victim as usize;
        if v >= children.len() {
            return Err(format!("--kill {victim} outside the {n} node cluster"));
        }
        // Let the run get under way, then crash the victim and bring it
        // back: the journal (and only the journal) survives.
        std::thread::sleep(std::time::Duration::from_millis(300));
        children[v]
            .kill()
            .map_err(|e| format!("killing node {victim}: {e}"))?;
        let _ = children[v].wait();
        std::thread::sleep(std::time::Duration::from_millis(150));
        children[v] = spawn(victim)?;
    }

    let mut failures = 0;
    for (node, child) in children.iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("node {node} exited with {status}");
                failures += 1;
            }
            Err(e) => {
                eprintln!("waiting for node {node}: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} node(s) failed"));
    }

    let mut decisions = Vec::new();
    let mut degraded = false;
    for node in 0..n as u32 {
        let path = dir.join(format!("node{node}.out.json"));
        let line = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let line = line.trim();
        decisions.extend(
            decode_report_decisions(line)
                .ok_or_else(|| format!("unparseable report from node {node}: {line}"))?,
        );
        if line.contains("\"healthy\":false") {
            degraded = true;
        }
    }
    Ok((decisions, degraded))
}

fn push_shared_flags(cmd: &mut std::process::Command, spec: &NetSpec) {
    cmd.arg("--width")
        .arg(spec.width.to_string())
        .arg("--height")
        .arg(spec.height.to_string())
        .arg("--r")
        .arg(spec.radius.to_string())
        .arg("--metric")
        .arg(match spec.metric {
            Metric::Linf => "linf",
            Metric::L2 => "l2",
        })
        .arg("--protocol")
        .arg(spec.protocol.name())
        .arg("--t")
        .arg(spec.t.to_string())
        .arg("--instances")
        .arg(spec.instances.to_string())
        .arg("--rounds")
        .arg(spec.rounds.to_string())
        .arg("--base-port")
        .arg(spec.base_port.to_string())
        .arg("--patience")
        .arg(spec.patience.to_string())
        .arg("--max-ticks")
        .arg(spec.max_ticks.to_string());
    if let Some(seed) = spec.chaos_seed {
        cmd.arg("--chaos-seed").arg(seed.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbcast_net::link::LinkStats;
    use rbcast_net::runtime::RuntimeStats;
    use std::path::Path;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn serve_parses_full_flag_set() {
        let spec = parse_serve(&argv(
            "--node 4 --width 3 --height 3 --r 1 --protocol cpa --t 1 \
             --instances 8 --rounds 20 --base-port 48000 --chaos-seed 7 \
             --journal /tmp/j.jsonl --out /tmp/o.json --patience 9000 --max-ticks 100",
        ))
        .expect("parses");
        assert_eq!(spec.node, 4);
        assert_eq!(spec.cluster.instances, 8);
        assert_eq!(spec.cluster.base_port, 48_000);
        assert_eq!(spec.cluster.chaos_seed, Some(7));
        assert_eq!(spec.journal.as_deref(), Some(Path::new("/tmp/j.jsonl")));
        assert_eq!(spec.cluster.patience, 9_000);
    }

    #[test]
    fn serve_requires_node() {
        assert!(parse_serve(&argv("--width 3")).is_err());
    }

    #[test]
    fn cluster_parses_transport_and_kill() {
        let (spec, opts) =
            parse_cluster(&argv("--transport loopback --kill 2 --instances 6")).expect("parses");
        assert!(!opts.udp);
        assert_eq!(opts.kill, Some(2));
        assert_eq!(spec.instances, 6);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse_cluster(&argv("--bogus 1")).is_err());
        assert!(parse_serve(&argv("--node 0 --bogus")).is_err());
    }

    #[test]
    fn report_lines_round_trip() {
        let report = NodeReport {
            node: rbcast_grid::NodeId(3),
            epoch: 2,
            rounds_closed: 17,
            decisions: vec![
                (
                    InstanceId {
                        origin: rbcast_grid::NodeId(0),
                        seq: 0,
                    },
                    true,
                    4,
                ),
                (
                    InstanceId {
                        origin: rbcast_grid::NodeId(1),
                        seq: 1,
                    },
                    false,
                    5,
                ),
            ],
            suspects: vec![7],
            stats: RuntimeStats::default(),
            link_totals: LinkStats::default(),
        };
        let line = encode_report(&report);
        let parsed = decode_report_decisions(&line).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].1, rbcast_grid::NodeId(3));
        assert!(parsed[0].2, "first decision carries value true");
        assert_eq!(parsed[1].3, 5);
        assert!(line.contains("\"healthy\":false"), "suspects mean degraded");
    }

    #[test]
    fn loopback_cluster_execution_matches_oracle_end_to_end() {
        let (mut spec, mut opts) = parse_cluster(&argv("--transport loopback")).expect("parses");
        spec.instances = 2;
        spec.rounds = 12;
        opts.kill = None;
        assert_eq!(execute_cluster(&spec, &opts), 0);
    }
}
