//! `rbcast` — reliable broadcast in a grid radio network under locally
//! bounded Byzantine and crash-stop faults.
//!
//! A from-scratch Rust reproduction of Bhandari & Vaidya, *On Reliable
//! Broadcast in a Radio Network* (PODC 2005). This root crate re-exports
//! the workspace's public surface; the substrates are usable directly:
//!
//! * [`grid`] — coordinates, metrics, toroidal arenas, neighborhoods,
//!   TDMA schedules;
//! * [`flow`] — Dinic max-flow, vertex-disjoint paths, chain packing;
//! * [`construct`] — the paper's geometric constructions (Table I,
//!   Figs. 1–19), computationally verified;
//! * [`sim`] — the synchronous radio-network simulator;
//! * [`adversary`] — locally bounded fault placements and auditing;
//! * [`protocols`] — flooding, CPA, and the indirect-report protocols,
//!   plus Byzantine attacker behaviours;
//! * [`core`] — thresholds, the experiment harness, percolation;
//! * [`net`] — the networked runtime: the same verified protocols over
//!   real UDP datagrams with reliable links, chaos injection, and
//!   journal-based crash recovery.
//!
//! # Quickstart
//!
//! ```
//! use rbcast::core::{Experiment, FaultKind, ProtocolKind};
//! use rbcast::adversary::Placement;
//!
//! let t = rbcast::core::thresholds::byzantine_max_t(2) as usize; // 4
//! let outcome = Experiment::new(2, ProtocolKind::IndirectSimplified)
//!     .with_t(t)
//!     .with_placement(Placement::FrontierCluster { t })
//!     .with_fault_kind(FaultKind::Liar)
//!     .run();
//! assert!(outcome.all_honest_correct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod cli_attack;
pub mod cli_net;

pub use rbcast_adversary as adversary;
pub use rbcast_construct as construct;
pub use rbcast_core as core;
pub use rbcast_flow as flow;
pub use rbcast_grid as grid;
pub use rbcast_net as net;
pub use rbcast_protocols as protocols;
pub use rbcast_sim as sim;
