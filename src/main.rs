//! The `rbcast` command-line tool: run broadcast experiments, sweep
//! budgets, audit placements, print the paper's bound curves.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rbcast::cli::parse(&args) {
        Ok(cmd) => std::process::exit(rbcast::cli::execute(&cmd)),
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", rbcast::cli::USAGE);
            std::process::exit(2);
        }
    }
}
