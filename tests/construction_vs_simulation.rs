//! Cross-checks between the static constructions (rbcast-construct) and
//! the dynamic protocol machinery (rbcast-protocols): the proof's
//! explicit relay paths must be exactly the kind of evidence the commit
//! rule accepts.

use rbcast::construct::{paths_u, r_2r_plus_1, worst_case_p};
use rbcast::flow::ChainPacker;
use rbcast::grid::{Coord, Metric, NeighborTable, Torus};
use rbcast::protocols::{CommitRule, EvidenceStore, Geometry};

/// Feed the Fig. 5 construction's chains for one committer into the
/// evidence store: determination must fire with t+1 = r(2r+1)/2 + 1
/// available disjoint chains.
#[test]
fn constructed_chains_determine_committer() {
    let r = 2u32;
    let torus = Torus::new(40, 40);
    // embed the construction at an offset away from the seam
    let offset = Coord::new(20, 20);
    let committer_rel = Coord::new(1, 2); // region U (p=1, q=2)
    let paths = paths_u::build(r, 1, 2);
    assert_eq!(paths.len(), r_2r_plus_1(r));

    let t = 4usize; // t_max for r = 2
    let mut ev = EvidenceStore::new(t, CommitRule::TwoLevel);
    let committer = torus.id(committer_rel + offset);
    for path in &paths {
        // path = [N, relays..., P]; the receiving node is P itself.
        let relays: Vec<_> = path[1..path.len() - 1]
            .iter()
            .map(|&c| torus.id(c + offset))
            .collect();
        ev.record_chain(committer, true, &relays);
    }
    let me = worst_case_p(r) + offset;
    let arena = NeighborTable::build(&torus, r, Metric::Linf);
    let geo = Geometry::new(&arena, me);
    let _ = ev.evaluate(&geo);
    assert_eq!(ev.determined().get(&committer), Some(&true));
}

/// The same chains survive t adversarial corruptions: drop any t of the
/// r(2r+1) disjoint chains and determination still fires.
#[test]
fn construction_tolerates_t_chain_losses() {
    let r = 2u32;
    let t = 4usize;
    let paths = paths_u::build(r, 1, 2);
    // Pack relays directly (abstract keys = coordinates hashed to ids).
    let key = |c: Coord| ((c.x + 100) * 1000 + (c.y + 100)) as u64;
    for dropped_start in 0..paths.len() - t {
        let mut packer = ChainPacker::new();
        for (i, path) in paths.iter().enumerate() {
            if i >= dropped_start && i < dropped_start + t {
                continue; // adversary suppressed these t chains
            }
            let relays: Vec<u64> = path[1..path.len() - 1].iter().map(|&c| key(c)).collect();
            packer.insert(&relays);
        }
        assert!(
            packer.max_disjoint(|_| true, (t + 1) as u32) >= (t + 1) as u32,
            "losing chains {dropped_start}.. broke determination"
        );
    }
}

/// Region M covers every committer the frontier node needs: its size is
/// at least 2t+1 at the exact threshold.
#[test]
fn region_m_is_a_2t_plus_1_quorum() {
    use rbcast::core::thresholds;
    for r in 1..=10u32 {
        let m = rbcast::construct::corner::region_m(r).len() as u64;
        let t = thresholds::byzantine_max_t(r);
        assert!(m > 2 * t, "r={r}: |M|={m} < 2t+1={}", 2 * t + 1);
    }
}

/// The simplified-protocol witness feeds the one-level rule: r(2r+1)
/// collectively disjoint ≤1-relay chains commit the frontier node.
#[test]
fn simplified_witness_commits_via_one_level_rule() {
    let r = 2u32;
    let t = 4usize;
    let torus = Torus::new(40, 40);
    let offset = Coord::new(20, 20);
    let mut ev = EvidenceStore::new(t, CommitRule::OneLevel);
    for path in rbcast::construct::simplified::witness_paths(r) {
        let committer = torus.id(path[0] + offset);
        let relays: Vec<_> = path[1..path.len() - 1]
            .iter()
            .map(|&c| torus.id(c + offset))
            .collect();
        ev.record_chain(committer, true, &relays);
    }
    let arena = NeighborTable::build(&torus, r, Metric::Linf);
    let geo = Geometry::new(&arena, worst_case_p(r) + offset);
    assert_eq!(ev.evaluate(&geo), Some(true));
}
