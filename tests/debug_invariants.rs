//! Runtime invariant gates: same-seed trace-hash determinism and the T2
//! safety oracle. The interesting assertions live *inside* the simulator
//! and experiment harness behind the `debug-invariants` feature; these
//! tests drive configurations through them and additionally prove the
//! oracle is not a no-op (it fires on a fabricated unsafe process).
//!
//! Run with: `cargo test -q --features debug-invariants`.

use rbcast::core::{Experiment, FaultKind, ProtocolKind};
use rbcast::grid::Metric;
use rbcast::sim::Network;
use rbcast_adversary::Placement;
use rbcast_grid::Torus;

/// Two constructions of the same experiment agree exactly. Under
/// `debug-invariants`, each `.run()` additionally replays itself and
/// asserts identical trace hashes internally.
#[test]
fn same_seed_experiments_agree() {
    let build = || {
        Experiment::new(2, ProtocolKind::IndirectSimplified)
            .with_t(4)
            .with_placement(Placement::RandomLocal {
                t: 4,
                seed: 7,
                attempts: 40,
            })
            .with_fault_kind(FaultKind::Liar)
    };
    let a = build().run();
    let b = build().run();
    assert_eq!(
        a, b,
        "same-seed experiments must produce identical outcomes"
    );
}

/// Trace hashes at the `Network` level: identical runs agree, and the
/// hash is sensitive to the configuration (a different crash set gives a
/// different delivery trace).
#[test]
fn trace_hash_distinguishes_configurations() {
    let torus = Torus::for_radius(1);
    let run = |crash_first: bool| {
        let mut net = Network::new(torus.clone(), 1, Metric::Linf, |id| {
            if id.index() == 0 {
                rbcast::protocols::attackers::liar(false)
            } else {
                Box::new(rbcast::protocols::Flood::new(
                    rbcast::protocols::ProtocolParams {
                        source: torus.id(rbcast::grid::Coord::ORIGIN),
                        value: true,
                        t: 0,
                    },
                ))
            }
        });
        if crash_first {
            net.crash_at(torus.id(rbcast::grid::Coord::new(2, 2)), 1);
        }
        net.run(64);
        net.trace_hash()
    };
    assert_eq!(
        run(false),
        run(false),
        "identical runs must hash identically"
    );
    assert_ne!(
        run(false),
        run(true),
        "a crashed node changes deliveries, so the trace hash must move"
    );
}

/// The oracle accepts every in-tolerance protocol/fault combination the
/// harness gates it on (these runs would panic under `debug-invariants`
/// if the T2 assertion were wrong).
#[test]
fn oracle_accepts_in_tolerance_runs() {
    for (protocol, kind) in [
        (ProtocolKind::Cpa, FaultKind::Liar),
        (ProtocolKind::IndirectSimplified, FaultKind::Forger),
        (ProtocolKind::Flood, FaultKind::CrashStop),
    ] {
        let t = match protocol {
            ProtocolKind::Cpa => 2usize,
            ProtocolKind::IndirectSimplified => 4,
            _ => 10,
        };
        let o = Experiment::new(2, protocol)
            .with_t(t)
            .with_placement(Placement::FrontierCluster { t })
            .with_fault_kind(kind)
            .run();
        assert!(o.safe(), "{} must stay T2-safe: {o}", protocol.name());
    }
}

/// The oracle is live: an honest-labelled process that commits the wrong
/// value trips the in-simulator T2 assertion. Only meaningful with the
/// feature on — without it the oracle is stored but never consulted.
#[cfg(feature = "debug-invariants")]
#[test]
#[should_panic(expected = "T2 safety violated")]
fn oracle_fires_on_wrong_commit() {
    use rbcast::sim::{Ctx, Process};
    use rbcast_grid::NodeId;

    /// Commits `false` in round 1 regardless of what it hears.
    struct WrongCommitter;
    impl Process<()> for WrongCommitter {
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.broadcast(());
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: &()) {}
        fn on_round_end(&mut self, ctx: &mut Ctx<'_, ()>) {
            if ctx.round() >= 1 {
                ctx.decide(false);
            }
        }
    }

    let torus = Torus::for_radius(1);
    let mut net = Network::new(torus, 1, Metric::Linf, |_| Box::new(WrongCommitter));
    // Ground truth is `true` and nobody is faulty, so the first wrong
    // commit must trip the oracle.
    net.set_safety_oracle(true, &[]);
    net.run(8);
}
