//! Model-fidelity integration tests: determinism, channel guarantees and
//! TDMA structure as observed through whole protocol runs.

use rbcast::adversary::Placement;
use rbcast::core::{Experiment, FaultKind, ProtocolKind};
use rbcast::grid::{Coord, Metric, TdmaSchedule, Torus};

#[test]
fn identical_experiments_are_bit_identical() {
    let run = || {
        Experiment::new(1, ProtocolKind::IndirectFull)
            .with_t(1)
            .with_placement(Placement::RandomLocal {
                t: 1,
                seed: 99,
                attempts: 30,
            })
            .with_fault_kind(FaultKind::Forger)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn experiment_outcome_accounts_for_every_node() {
    let o = Experiment::new(2, ProtocolKind::Flood)
        .with_t(5)
        .with_placement(Placement::RandomLocal {
            t: 5,
            seed: 5,
            attempts: 40,
        })
        .run();
    let torus = Torus::for_radius(2);
    assert_eq!(
        o.honest + o.fault_count,
        torus.len(),
        "honest + faulty must partition the torus"
    );
    assert_eq!(
        o.committed_correct + o.committed_wrong + o.undecided,
        o.honest
    );
}

#[test]
fn tdma_coloring_is_conflict_free_on_experiment_arenas() {
    for r in 1..=3 {
        let torus = Torus::for_radius(r);
        let tdma = TdmaSchedule::new(&torus, r).expect("for_radius tori are schedulable");
        assert!(tdma.verify_conflict_free(&torus), "r={r}");
    }
}

#[test]
fn message_counts_scale_with_protocol_richness() {
    // flood < cpa ≤ simplified < full, on the same fault-free arena
    let count = |kind| Experiment::new(1, kind).with_t(1).run().stats.messages_sent;
    let flood = count(ProtocolKind::Flood);
    let cpa = count(ProtocolKind::Cpa);
    let simplified = count(ProtocolKind::IndirectSimplified);
    let full = count(ProtocolKind::IndirectFull);
    assert!(flood <= cpa, "{flood} > {cpa}");
    assert!(cpa < simplified, "{cpa} >= {simplified}");
    assert!(simplified < full, "{simplified} >= {full}");
}

#[test]
fn l2_and_linf_neighborhoods_differ_in_run_shape() {
    // same radius, different metric ⇒ different delivery counts
    let linf = Experiment::new(2, ProtocolKind::Flood).run();
    let l2 = Experiment::new(2, ProtocolKind::Flood)
        .with_metric(Metric::L2)
        .run();
    assert!(l2.stats.deliveries < linf.stats.deliveries);
    assert!(linf.all_honest_correct() && l2.all_honest_correct());
}

#[test]
fn larger_and_rectangular_arenas_behave_identically() {
    use rbcast::grid::Torus;
    // bigger square torus
    let big = Experiment::new(1, ProtocolKind::IndirectSimplified)
        .with_torus(Torus::new(18, 18))
        .with_t(1)
        .with_placement(Placement::FrontierCluster { t: 1 })
        .with_fault_kind(FaultKind::Liar)
        .run();
    assert!(big.all_honest_correct(), "{big}");
    // rectangular torus
    let rect = Experiment::new(1, ProtocolKind::IndirectSimplified)
        .with_torus(Torus::new(24, 9))
        .with_t(1)
        .with_placement(Placement::FrontierCluster { t: 1 })
        .with_fault_kind(FaultKind::Forger)
        .run();
    assert!(rect.all_honest_correct(), "{rect}");
}

#[test]
fn wavefront_history_accounts_for_all_decisions() {
    use rbcast::grid::{Coord, Metric, Torus};
    use rbcast::protocols::{Flood, Msg, ProtocolParams};
    use rbcast::sim::{Network, Process};
    let torus = Torus::for_radius(2);
    let params = ProtocolParams {
        source: torus.id(Coord::ORIGIN),
        value: true,
        t: 0,
    };
    let mut net = Network::new(torus.clone(), 2, Metric::Linf, |_| {
        Box::new(Flood::new(params)) as Box<dyn Process<Msg>>
    });
    let stats = net.run(1_000);
    assert!(stats.quiescent());
    let from_history: u64 = net.history().iter().map(|h| h.decisions).sum();
    // the source decides in round 0 (before any report), everyone else
    // during reported rounds
    assert_eq!(from_history + 1, torus.len() as u64);
    // per-round decision counts are the Figs. 9-10 wavefront: nonzero
    // until completion
    assert!(net.history().iter().all(|h| h.transmissions > 0));
}

#[test]
fn source_is_at_the_origin_and_decides_first() {
    let o = Experiment::new(1, ProtocolKind::Cpa).run();
    assert!(o.all_honest_correct());
    let torus = Torus::for_radius(1);
    let _source = torus.id(Coord::ORIGIN);
    // the origin's decision round is 0 (it decides on start)
    // (checked indirectly: a full run where everyone decides implies the
    // source seeded it; direct decision-round checks live in the sim
    // crate's unit tests)
}
