//! Property-based safety tests: Theorem 2 ("no node shall commit to a
//! wrong value") under randomized locally-bounded placements and every
//! Byzantine behaviour, across protocols and metrics.

use proptest::prelude::*;
use rbcast::adversary::Placement;
use rbcast::core::{thresholds, Experiment, FaultKind, ProtocolKind};
use rbcast::grid::Metric;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full protocol at r = 1, t = t_max: safety AND completeness
    /// under random locally-bounded placements, any behaviour.
    #[test]
    fn indirect_full_r1_random_placements(seed in 0u64..1_000, behave in 0usize..3) {
        let t = thresholds::byzantine_max_t(1) as usize;
        let kind = [FaultKind::Silent, FaultKind::Liar, FaultKind::Forger][behave];
        let o = Experiment::new(1, ProtocolKind::IndirectFull)
            .with_t(t)
            .with_placement(Placement::RandomLocal { t, seed, attempts: 40 })
            .with_fault_kind(kind)
            .run();
        prop_assert!(o.audited_bound <= t);
        prop_assert!(o.all_honest_correct(), "{} ({:?})", o, kind);
    }

    /// The simplified protocol at r = 2: same properties.
    #[test]
    fn indirect_simplified_r2_random_placements(seed in 0u64..1_000, behave in 0usize..3) {
        let t = thresholds::byzantine_max_t(2) as usize;
        let kind = [FaultKind::Silent, FaultKind::Liar, FaultKind::Forger][behave];
        let o = Experiment::new(2, ProtocolKind::IndirectSimplified)
            .with_t(t)
            .with_placement(Placement::RandomLocal { t, seed, attempts: 40 })
            .with_fault_kind(kind)
            .run();
        prop_assert!(o.audited_bound <= t);
        prop_assert!(o.all_honest_correct(), "{} ({:?})", o, kind);
    }

    /// CPA stays safe (never commits wrong) at ANY t' ≤ its budget, even
    /// when completion is not guaranteed.
    #[test]
    fn cpa_safety_r2(seed in 0u64..1_000, t in 0usize..3) {
        let o = Experiment::new(2, ProtocolKind::Cpa)
            .with_t(t)
            .with_placement(Placement::RandomLocal { t, seed, attempts: 40 })
            .with_fault_kind(FaultKind::Liar)
            .run();
        prop_assert!(o.safe(), "{}", o);
    }

    /// Crash-stop flooding: whatever the placement within budget, nobody
    /// ever receives a wrong value (trivial safety) and the audited bound
    /// respects t.
    #[test]
    fn flood_safety_and_audit(seed in 0u64..1_000, t in 0usize..6) {
        let o = Experiment::new(1, ProtocolKind::Flood)
            .with_t(t)
            .with_placement(Placement::RandomLocal { t, seed, attempts: 40 })
            .with_fault_kind(FaultKind::CrashStop)
            .run();
        prop_assert!(o.safe());
        prop_assert!(o.audited_bound <= t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Heterogeneous adversaries (per-node silent/liar/forger mix) at
    /// t_max: still safe and complete.
    #[test]
    fn mixed_adversaries_r2_simplified(seed in 0u64..1_000, mix in 0u64..1_000) {
        let t = thresholds::byzantine_max_t(2) as usize;
        let o = Experiment::new(2, ProtocolKind::IndirectSimplified)
            .with_t(t)
            .with_placement(Placement::RandomLocal { t, seed, attempts: 40 })
            .with_fault_kind(FaultKind::Mixed { seed: mix })
            .run();
        prop_assert!(o.all_honest_correct(), "{}", o);
    }
}

/// The L2 metric end to end: fault-free completion for every protocol.
#[test]
fn l2_metric_fault_free_protocols() {
    for kind in [
        ProtocolKind::Flood,
        ProtocolKind::Cpa,
        ProtocolKind::IndirectSimplified,
    ] {
        let o = Experiment::new(2, kind)
            .with_metric(Metric::L2)
            .with_t(2)
            .run();
        assert!(o.all_honest_correct(), "{}: {o}", kind.name());
    }
}

/// The L2 metric with a Byzantine cluster at the §VIII estimate
/// `t = ⌊0.23πr²⌋` (r = 2 ⇒ t = 2): the simplified protocol completes.
#[test]
fn l2_metric_byzantine_cluster() {
    let t = thresholds::l2_byzantine_estimate(2).floor() as usize; // 2
    let o = Experiment::new(2, ProtocolKind::IndirectSimplified)
        .with_metric(Metric::L2)
        .with_t(t)
        .with_placement(Placement::FrontierCluster { t })
        .with_fault_kind(FaultKind::Liar)
        .run();
    assert!(o.safe(), "{o}");
    assert!(o.all_honest_correct(), "{o}");
}
