//! Cross-crate integration: the paper's thresholds exercised end to end
//! (adversary placement → simulator → protocol → outcome), at sizes that
//! stay fast in debug builds.

use rbcast::adversary::Placement;
use rbcast::core::{thresholds, Experiment, FaultKind, ProtocolKind};

#[test]
fn byzantine_exact_threshold_r1_full_protocol() {
    // r = 1: t_max = 1. The full §VI protocol tolerates one Byzantine
    // fault per neighborhood under every behaviour.
    let t = thresholds::byzantine_max_t(1) as usize;
    for kind in [FaultKind::Silent, FaultKind::Liar, FaultKind::Forger] {
        let o = Experiment::new(1, ProtocolKind::IndirectFull)
            .with_t(t)
            .with_placement(Placement::FrontierCluster { t })
            .with_fault_kind(kind)
            .run();
        assert!(o.all_honest_correct(), "{kind:?}: {o}");
    }
}

#[test]
fn byzantine_exact_threshold_r1_simplified_protocol() {
    let t = thresholds::byzantine_max_t(1) as usize;
    for kind in [FaultKind::Silent, FaultKind::Liar, FaultKind::Forger] {
        let o = Experiment::new(1, ProtocolKind::IndirectSimplified)
            .with_t(t)
            .with_placement(Placement::FrontierCluster { t })
            .with_fault_kind(kind)
            .run();
        assert!(o.all_honest_correct(), "{kind:?}: {o}");
    }
}

#[test]
fn byzantine_beyond_threshold_r1_breaks() {
    // t_max + 1 = 2 liars per neighborhood defeat reliable broadcast
    // (deceived or starved honest nodes) — Koo's impossibility bound.
    let t = thresholds::byzantine_max_t(1) as usize;
    let o = Experiment::new(1, ProtocolKind::IndirectSimplified)
        .with_t(t)
        .with_placement(Placement::CheckerStrips)
        .with_fault_kind(FaultKind::Liar)
        .run();
    assert_eq!(
        o.audited_bound as u64,
        thresholds::byzantine_impossible_t(1)
    );
    assert!(!o.all_honest_correct(), "{o}");
}

#[test]
fn crash_exact_threshold_r1() {
    // achievable at t = r(2r+1) − 1 = 2 …
    let t = thresholds::crash_max_t(1) as usize;
    let o = Experiment::new(1, ProtocolKind::Flood)
        .with_t(t)
        .with_placement(Placement::FrontierCluster { t })
        .with_fault_kind(FaultKind::CrashStop)
        .run();
    assert!(o.all_honest_correct(), "{o}");
    // … impossible at t = r(2r+1) = 3 with the strip construction.
    let o = Experiment::new(1, ProtocolKind::Flood)
        .with_t(t + 1)
        .with_placement(Placement::DoubleStrip)
        .with_fault_kind(FaultKind::CrashStop)
        .run();
    assert!(o.undecided > 0, "{o}");
    assert!(o.safe());
}

#[test]
fn cpa_guarantee_r2() {
    let t = thresholds::cpa_guaranteed_t(2) as usize;
    let o = Experiment::new(2, ProtocolKind::Cpa)
        .with_t(t)
        .with_placement(Placement::FrontierCluster { t })
        .with_fault_kind(FaultKind::Liar)
        .run();
    assert!(o.all_honest_correct(), "{o}");
}

#[test]
fn indirect_matches_exact_threshold_where_cpa_has_no_guarantee() {
    // At the exact Byzantine threshold t = 4 (r = 2) the simplified
    // indirect protocol PROVABLY completes (Theorem 1); CPA's guarantee
    // stops at ⌊⅔r²⌋ = 2 (Theorem 6). Empirically CPA often survives
    // beyond its guarantee on the torus (its worst-case placements are
    // not simple clusters — see the thresh_cpa sweep); the provable
    // separation is in the bounds, which we check both ways here.
    let t = thresholds::byzantine_max_t(2) as usize;
    assert!(t > thresholds::cpa_guaranteed_t(2) as usize);
    let indirect = Experiment::new(2, ProtocolKind::IndirectSimplified)
        .with_t(t)
        .with_placement(Placement::FrontierCluster { t })
        .with_fault_kind(FaultKind::Silent)
        .run();
    assert!(indirect.all_honest_correct(), "{indirect}");
    // CPA configured at the same t must at least stay safe.
    let cpa = Experiment::new(2, ProtocolKind::Cpa)
        .with_t(t)
        .with_placement(Placement::FrontierCluster { t })
        .with_fault_kind(FaultKind::Liar)
        .run();
    assert!(cpa.safe(), "{cpa}");
}

#[test]
fn audited_bounds_match_constructions() {
    use rbcast::adversary::local_fault_bound;
    use rbcast::grid::{Metric, Torus};
    for r in 1..=2u32 {
        let torus = Torus::for_radius(r);
        let strips = Placement::DoubleStrip.place(&torus, r, Metric::Linf);
        assert_eq!(
            local_fault_bound(&torus, r, Metric::Linf, &strips) as u64,
            thresholds::crash_impossible_t(r)
        );
        let checker = Placement::CheckerStrips.place(&torus, r, Metric::Linf);
        assert_eq!(
            local_fault_bound(&torus, r, Metric::Linf, &checker) as u64,
            thresholds::byzantine_impossible_t(r)
        );
    }
}
