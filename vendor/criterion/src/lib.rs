//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate keeps
//! the workspace's `[[bench]]` targets compiling and runnable with the
//! API subset they use (`Criterion`, benchmark groups, `BenchmarkId`,
//! `b.iter`/`b.iter_batched`, the `criterion_group!`/`criterion_main!`
//! macros). It is a *smoke-bench*: each routine is warmed up and timed
//! for a fixed iteration budget and the mean wall time is printed — no
//! statistical analysis, outlier detection, or HTML reports.
//!
//! Wall-clock use is confined to this measurement harness
//! (`audit:allow(wall-clock)` — benches are timing tools, not simulation
//! code).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant; // audit:allow(wall-clock): bench measurement harness

pub use std::hint::black_box;

/// Iterations used per measurement when the group does not override
/// `sample_size`.
const DEFAULT_SAMPLE_SIZE: usize = 50;

/// Batch sizing hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility, measurement is identical for all variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier combining a function name and a parameter, shown as
/// `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `{name}/{parameter}`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures; handed to every benchmark function.
#[derive(Debug)]
pub struct Bencher {
    iters: usize,
    /// Mean nanoseconds per iteration of the last routine.
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `routine` over the configured iteration budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up pass keeps lazily-initialised state out of the
        // measurement.
        black_box(routine());
        let start = Instant::now(); // audit:allow(wall-clock)
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup cost
    /// from the per-iteration mean.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now(); // audit:allow(wall-clock)
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.last_mean_ns = total_ns as f64 / self.iters as f64;
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-measurement iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), b.last_mean_ns);
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher {
            iters: self.sample_size,
            last_mean_ns: 0.0,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.last_mean_ns);
    }

    /// Ends the group (upstream consumes the group here; this stub keeps
    /// the call for source compatibility).
    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions by [`criterion_group!`].
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for compatibility with `configure_from_args`; CLI flags
    /// are ignored by this stub.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

fn report(group: &str, id: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "µs")
    } else {
        (mean_ns, "ns")
    };
    println!("{group}/{id:<40} mean {value:>10.3} {unit}");
}

/// Declares a group of benchmark functions; mirrors
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point; mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        // warm-up + 3 measured iterations
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::new("b", 1), &7, |b, &x| {
            b.iter_batched(
                || vec![x; 4],
                |v| v.iter().sum::<i32>(),
                BatchSize::SmallInput,
            );
        });
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
