//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of proptest the workspace uses: integer-range
//! and tuple strategies, `prop_map`, `collection::vec`, the `proptest!`
//! macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted for an offline test
//! dependency:
//!
//! * no shrinking — a failing case reports the panic message (strategies
//!   here generate small values anyway, and every generated case is
//!   reproducible: the per-test RNG seed is derived from the test name);
//! * no persistence files, no forking, no timeouts;
//! * `cases` defaults to 96 (upstream: 256) to keep simulation-heavy
//!   suites fast; tests that need fewer set
//!   `ProptestConfig::with_cases(n)` exactly as with upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize, // exclusive
    }

    /// Length specification for [`vec`]: a half-open range or an exact
    /// length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // exclusive
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Builds a [`VecStrategy`]; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.min < size.max, "collection::vec: empty size range");
        VecStrategy {
            element,
            min: size.min,
            max: size.max,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.min, self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-20i64..20).generate(&mut rng);
            assert!((-20..20).contains(&w));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::new(2);
        let strat = (0u32..10, 0u32..10).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(strat.generate(&mut rng) < 19);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::new(3);
        let strat = crate::collection::vec(0u8..5, 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn nested_vec_strategies() {
        let mut rng = TestRng::new(4);
        let strat = crate::collection::vec(crate::collection::vec(0u64..8, 1..3), 1..9);
        let v = strat.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 9);
        for inner in v {
            assert!(!inner.is_empty() && inner.len() < 3);
        }
    }

    #[test]
    fn just_clones_its_value() {
        let mut rng = TestRng::new(5);
        assert_eq!(Just(41).generate(&mut rng), 41);
    }

    // The macro round-trip: these expand through the public surface.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(a in 0usize..50, b in 0usize..50) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
        }

        #[test]
        fn macro_assume_rejects(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert!(v != 3);
        }
    }

    #[test]
    fn prop_assert_produces_fail_with_message() {
        let r: Result<(), TestCaseError> = (|| {
            prop_assert!(1 + 1 == 3, "math is broken: {}", 2);
            Ok(())
        })();
        match r {
            Err(TestCaseError::Fail(m)) => assert!(m.contains("math is broken")),
            other => panic!("expected Fail, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics() {
        let config = ProptestConfig::with_cases(4);
        let mut runner = crate::test_runner::TestRunner::new(config, "failing_property");
        runner.run(|rng| {
            let v = (0u32..4).generate(rng);
            prop_assert!(v > 10, "v was {}", v);
            Ok(())
        });
    }
}
