//! Value-generation strategies.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: `generate`
/// replaces `new_tree` + simplification.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (`proptest`'s `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying up to a bounded
    /// number of times (`proptest`'s `prop_filter`).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy adapter applying a function to generated values.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter rejecting values that fail a predicate.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?}: predicate rejected 1000 draws",
            self.whence
        );
    }
}

/// Strategy producing a fixed value (`proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        loop {
            let v = rng.below(lo as usize, hi as usize) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }
}

impl Strategy for std::ops::Range<bool> {
    type Value = bool;

    fn generate(&self, _rng: &mut TestRng) -> bool {
        // `false..true` can only produce `false`; kept for completeness.
        assert!(!self.start & self.end, "empty bool range");
        false
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "range strategy: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "range strategy: empty range");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
