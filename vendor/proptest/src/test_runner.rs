//! Case execution: configuration, RNG, and the `proptest!` macro family.

/// Per-test configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 96 keeps simulation-heavy suites fast
        // while still exercising each property broadly.
        ProptestConfig { cases: 96 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case does not count, draw another.
    Reject(String),
    /// `prop_assert!`/`prop_assert_eq!` failed: the property is false.
    Fail(String),
}

/// Deterministic RNG driving generation (SplitMix64).
///
/// Each `proptest!`-generated test derives its seed from the test's name,
/// so runs are reproducible without persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates a generator seeded from a string (FNV-1a of `name`).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "TestRng::below: empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Drives one property: counts accepted cases, bounds rejections.
#[derive(Debug)]
pub struct TestRunner {
    rng: TestRng,
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner for the test named `name` under `config`.
    #[must_use]
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        TestRunner {
            rng: TestRng::from_name(name),
            config,
        }
    }

    /// The generation RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Runs `case` until `config.cases` accepted cases pass, panicking on
    /// the first failure. Rejections (from `prop_assume!`) retry with a
    /// fresh draw, capped at 10× the case budget.
    pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let budget = self.config.cases;
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < budget {
            match case(&mut self.rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= budget.saturating_mul(10),
                        "proptest: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed after {accepted} passing cases: {msg}")
                }
            }
        }
    }
}

/// Defines property tests over strategies; mirrors `proptest::proptest!`.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))] // optional
///
///     /// docs…
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(0i64..4, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)
     $($(#[$attr:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(|rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                    { $body }
                    Ok(())
                });
            }
        )*
    };
}

/// `assert!` that fails the surrounding property instead of panicking
/// directly (so the harness can report the case count).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond), file!(), line!(), format_args!($($fmt)+)
            )));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "prop_assert_eq! left = {:?}, right = {:?}",
            *l,
            *r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "prop_assert_eq! left = {:?}, right = {:?}: {}",
            *l,
            *r,
            format_args!($($fmt)+)
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "prop_assert_ne! both sides = {:?}",
            *l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "prop_assert_ne! both sides = {:?}: {}",
            *l,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case (does not count towards the case budget)
/// when `cond` is false; mirrors `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
