//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the *exact* API surface the workspace uses — seeded,
//! deterministic generators only. There is deliberately no `thread_rng`
//! and no OS entropy source: every generator must be constructed from an
//! explicit seed, which is what the repo's determinism audit
//! (`cargo xtask audit`) demands of simulation code anyway.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded via
//! SplitMix64 — statistically solid for simulation workloads, and stable
//! across platforms and releases (unlike the real `StdRng`, whose stream
//! is explicitly not portable; nothing in this workspace depends on the
//! upstream stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction for deterministic generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Same seed, same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// `p` is clamped into `[0, 1]`; NaN is treated as 0.
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        // Compare against a uniform draw in [0, 1) with 53 random bits.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples uniformly from `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a half-open range.
pub trait UniformSample: Copy {
    /// Uniform draw in `[lo, hi)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                // Modulo draw: the bias is < 2^-40 for the span sizes this
                // workspace uses (simulation parameters, not cryptography).
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, usize);

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let span = hi - lo;
        lo + rng.next_u64() % span
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Unlike the upstream `StdRng` this stream is *stable*: the same
    /// seed yields the same sequence on every platform and in every
    /// build, which the repo's same-seed trace-hash determinism checks
    /// rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for slices: random shuffling and selection.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut v1: Vec<u32> = (0..50).collect();
        let mut v2: Vec<u32> = (0..50).collect();
        v1.shuffle(&mut StdRng::seed_from_u64(9));
        v2.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v1, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
